"""The resilience battery: budgets, fault plans, the ladder, and the breaker.

The contract under test is ``docs/resilience.md``'s: **every admitted
request terminates with a usable plan** — full when possible, explicitly
degraded when not, shed-with-an-answer when its deadline expired in the
queue — and every injected fault is *accounted for exactly* (plan fires,
shed/degraded/breaker counters, the attribution invariant) rather than
absorbed silently.  Undegraded answers stay bit-identical to the cold
oracle; degraded answers are labeled with their ladder rung and a reason
trail so they can never masquerade as the full result.

Unit layers first (TimeBudget, FaultPlan, CircuitBreaker, the admission
queue's deadline handling), then the ladder via direct ``_execute`` calls
(deterministic, no queue timing), then the asyncio integration paths:
client withdrawal racing a hung worker, queue shedding, breaker
short-circuiting under a poisoned tenant.
"""

import asyncio
import time

import pytest

from repro.cluster import ClusterSpec
from repro.common.errors import DeadlineExceeded, RetryableError, TerminalError, is_terminal
from repro.core.budget import UNBOUNDED, TimeBudget
from repro.profiler import Profiler
from repro.service import (
    AdmissionQueue,
    CircuitBreaker,
    PlanRequest,
    PlanningServer,
    build_variant,
    cold_optimize,
    oracle_fingerprint,
)
from repro.service.server import _Ticket
from repro.verification import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    TerminalInjectedFault,
    corrupt_file,
    install_fault_plan,
    truncate_file,
)
from repro.verification.faults import plan_from_env
from repro.workloads import build_workload

CLUSTER = ClusterSpec.paper_cluster()

# Indexes into _execute's "ok" tuple (see PlanningServer._execute).
OK_SIGNATURE, OK_FINGERPRINT, OK_ESTIMATE = 1, 2, 3
OK_DECISION_SINK, OK_LEVEL, OK_LABEL, OK_REASON = 12, 14, 15, 16
OK_FULL_ATTEMPTED, OK_FULL_FAILED = 17, 18
ERR_TRACE, ERR_FULL_ATTEMPTED, ERR_FULL_FAILED = 1, 7, 8


@pytest.fixture(scope="module")
def catalog():
    workload = build_workload("PJ", scale=0.1, seed=42)
    Profiler().profile_workflow(workload.workflow, workload.base_datasets)
    return {"pj": workload.plan}


_ORACLES = {}


def oracle(catalog, workload, optimizer):
    key = (workload, optimizer)
    if key not in _ORACLES:
        _ORACLES[key] = oracle_fingerprint(
            cold_optimize(CLUSTER, catalog[workload], optimizer)
        )
    return _ORACLES[key]


def make_server(catalog, **kwargs):
    server = PlanningServer(CLUSTER, **kwargs)
    for name, plan in catalog.items():
        server.register_workload(name, plan)
    return server


def work_for(catalog, tenant="t0", optimizer="Stubby", deadline_at=None, allow_full=True):
    return (tenant, "pj", optimizer, 17, deadline_at, allow_full)


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


# --------------------------------------------------------------------------
class TestTimeBudget:
    def test_unbounded_is_free_and_never_raises(self):
        budget = TimeBudget()
        assert budget.unbounded
        assert budget.remaining() == float("inf")
        assert not budget.expired
        budget.check("anywhere")
        UNBOUNDED.check("shared-singleton")

    def test_seconds_and_deadline_are_exclusive(self):
        with pytest.raises(ValueError):
            TimeBudget(seconds=1.0, deadline_at=2.0)

    def test_expiry_raises_with_site_and_overshoot(self):
        clock = FakeClock(10.0)
        budget = TimeBudget(seconds=5.0, clock=clock)
        assert budget.remaining() == pytest.approx(5.0)
        budget.check("search.unit")
        clock.now = 17.0
        assert budget.expired
        assert budget.remaining() == 0.0
        with pytest.raises(DeadlineExceeded) as excinfo:
            budget.check("search.unit")
        assert excinfo.value.site == "search.unit"
        assert excinfo.value.overshoot_s == pytest.approx(2.0)
        # The ladder's routing depends on this taxonomy: an expired budget
        # is retryable-at-a-cheaper-rung, never terminal.
        assert isinstance(excinfo.value, RetryableError)
        assert not is_terminal(excinfo.value)

    def test_absolute_deadline_form(self):
        clock = FakeClock(50.0)
        budget = TimeBudget(deadline_at=51.5, clock=clock)
        assert budget.remaining() == pytest.approx(1.5)
        clock.now = 51.5
        assert budget.expired


class TestFaultPlanUnit:
    def test_at_hits_fires_on_exact_matching_ordinals(self):
        plan = FaultPlan([FaultSpec(site="s", at_hits=(2, 4))])
        with install_fault_plan(plan):
            from repro.common.faults import fault_site

            fired = []
            for visit in range(1, 6):
                try:
                    fault_site("s")
                except InjectedFault:
                    fired.append(visit)
        assert fired == [2, 4]
        assert plan.fires("s") == 2

    def test_max_fires_bounds_an_unpinned_spec(self):
        plan = FaultPlan([FaultSpec(site="s", max_fires=2)])
        with install_fault_plan(plan):
            from repro.common.faults import fault_site

            outcomes = []
            for _ in range(5):
                try:
                    fault_site("s")
                    outcomes.append("pass")
                except InjectedFault:
                    outcomes.append("fire")
        assert outcomes == ["fire", "fire", "pass", "pass", "pass"]

    def test_match_filters_by_context(self):
        plan = FaultPlan([FaultSpec(site="s", match={"worker_slot": 1})])
        with install_fault_plan(plan):
            from repro.common.faults import fault_site

            fault_site("s", worker_slot=0)  # no match, no fire
            fault_site("s")  # key absent: no match
            with pytest.raises(InjectedFault):
                fault_site("s", worker_slot=1)
        report = plan.report()
        assert report["specs"][0]["hits"] == 1
        assert report["specs"][0]["fires"] == 1
        assert report["site_visits"]["s"] == 3

    def test_terminal_kind_raises_terminal(self):
        plan = FaultPlan([FaultSpec(site="s", kind="terminal")])
        with install_fault_plan(plan):
            from repro.common.faults import fault_site

            with pytest.raises(TerminalInjectedFault) as excinfo:
                fault_site("s")
        assert is_terminal(excinfo.value)
        assert isinstance(excinfo.value, TerminalError)

    def test_latency_kind_sleeps_instead_of_raising(self):
        plan = FaultPlan([FaultSpec(site="s", kind="latency", delay_s=0.01)])
        with install_fault_plan(plan):
            from repro.common.faults import fault_site

            started = time.perf_counter()
            fault_site("s")
            assert time.perf_counter() - started >= 0.01

    def test_kill_is_refused_in_the_installing_process(self):
        # The guard that makes kill specs safe to author: the process that
        # installed the plan (the test runner) can never SIGKILL itself.
        plan = FaultPlan([FaultSpec(site="s", kind="kill")])
        with install_fault_plan(plan):
            from repro.common.faults import fault_site

            with pytest.raises(TerminalInjectedFault, match="not in a forked worker"):
                fault_site("s")

    def test_unknown_kind_and_bad_ordinals_are_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(site="s", kind="meteor")
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec(site="s", at_hits=(0,))

    def test_file_faults_without_a_path_are_noops(self, tmp_path):
        plan = FaultPlan([FaultSpec(site="s", kind="corrupt")])
        with install_fault_plan(plan):
            from repro.common.faults import fault_site

            fault_site("s")  # no path in context: nothing to mangle
        assert plan.fires("s") == 1

    def test_corruption_is_deterministic_per_seed(self, tmp_path):
        a, b, c = (tmp_path / name for name in ("a.bin", "b.bin", "c.bin"))
        payload = b"the quick brown fox" * 100
        for path in (a, b, c):
            path.write_bytes(payload)
        assert corrupt_file(str(a), seed=3)
        assert corrupt_file(str(b), seed=3)
        # Same length, same seed, same name-derived stream → identical rerun.
        assert len(a.read_bytes()) == len(payload)
        assert a.read_bytes() != payload
        assert truncate_file(str(c), fraction=0.25)
        assert len(c.read_bytes()) == len(payload) // 4
        assert not corrupt_file(str(tmp_path / "absent.bin"))
        with pytest.raises(ValueError):
            truncate_file(str(a), fraction=1.0)

    def test_env_round_trip(self):
        plan = FaultPlan(
            [FaultSpec(site="whatif.estimate", kind="latency", at_hits=(3,), delay_s=0.2)],
            seed=9,
        )
        environ = {"STUBBY_FAULT_PLAN": plan.as_json(), "STUBBY_FAULT_SEED": "9"}
        loaded = plan_from_env(environ)
        assert loaded is not None
        assert loaded.seed == 9
        assert [spec.as_dict() for spec in loaded.specs] == [
            spec.as_dict() for spec in plan.specs
        ]
        assert plan_from_env({}) is None
        with pytest.raises(Exception):
            plan_from_env({"STUBBY_FAULT_PLAN": "not json"})

    def test_install_restores_the_previous_plan(self):
        from repro.common.faults import active_plan

        outer = FaultPlan([], name="outer")
        inner = FaultPlan([], name="inner")
        before = active_plan()
        with install_fault_plan(outer):
            with install_fault_plan(inner):
                assert active_plan() is inner
            assert active_plan() is outer
        assert active_plan() is before


class TestCircuitBreaker:
    def make(self, clock, threshold=3):
        return CircuitBreaker(
            failure_threshold=threshold, backoff_s=1.0, max_backoff_s=4.0, clock=clock
        )

    def test_trips_after_consecutive_failures_only(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # streak broken
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.trips == 0
        breaker.record_failure()
        assert breaker.state == "open" and breaker.trips == 1
        assert breaker.retry_at == clock.now + 1.0

    def test_open_denies_and_counts_short_circuits(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1)
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow_full()
        assert not breaker.allow_full()
        assert breaker.short_circuits == 2

    def test_half_open_grants_exactly_one_probe(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1)
        breaker.record_failure()
        clock.now += 1.0  # backoff elapsed
        assert breaker.allow_full()  # the probe
        assert breaker.state == "half_open" and breaker.probes == 1
        assert not breaker.allow_full()  # second concurrent request: denied
        assert breaker.short_circuits == 1

    def test_probe_success_closes_and_resets_backoff(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1)
        breaker.record_failure()
        clock.now += 1.0
        assert breaker.allow_full()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.current_backoff_s == breaker.base_backoff_s
        assert breaker.allow_full()

    def test_probe_failure_retrips_with_doubled_capped_backoff(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1)
        backoffs = []
        for _ in range(4):
            # First pass: closed + threshold 1 → trip.  Later passes: the
            # half-open probe fails → immediate re-trip, backoff doubled.
            breaker.record_failure()
            backoffs.append(breaker.retry_at - clock.now)
            clock.now = breaker.retry_at
            assert breaker.allow_full()  # half-open probe
        # 1 → 2 → 4 → capped at 4.
        assert backoffs == [1.0, 2.0, 4.0, 4.0]
        assert breaker.trips == 4

    def test_as_dict_reports_the_counters(self):
        breaker = self.make(FakeClock(), threshold=1)
        breaker.record_failure()
        snapshot = breaker.as_dict()
        assert snapshot["state"] == "open"
        assert snapshot["trips"] == 1


class TestAdmissionDeadlines:
    def test_expired_items_are_shed_not_dispatched(self):
        clock = FakeClock()
        queue = AdmissionQueue(capacity=8, clock=clock)
        shed = []
        queue.on_shed = shed.append
        queue.offer("A", "expired-1", deadline_at=clock.now + 1.0)
        queue.offer("A", "live", deadline_at=clock.now + 100.0)
        queue.offer("A", "no-deadline")
        clock.now += 5.0
        batch = queue.take_batch(8)
        assert batch == ["live", "no-deadline"]
        assert shed == ["expired-1"]
        assert queue.stats.shed_expired == 1
        assert len(queue) == 0

    def test_priority_orders_within_a_tenant_fifo_among_equals(self):
        queue = AdmissionQueue(capacity=8)
        queue.offer("A", "low-1", priority=0)
        queue.offer("A", "high", priority=5)
        queue.offer("A", "low-2", priority=0)
        assert queue.take_batch(8) == ["high", "low-1", "low-2"]

    def test_priority_cannot_starve_other_tenants(self):
        # Cross-tenant fairness is round-robin regardless of priorities: a
        # high-priority flood from A still alternates with B.
        queue = AdmissionQueue(capacity=8)
        for index in range(3):
            queue.offer("A", f"a{index}", priority=9)
        queue.offer("B", "b0", priority=0)
        assert queue.take_batch(8) == ["a0", "b0", "a1", "a2"]

    def test_shedding_releases_capacity(self):
        clock = FakeClock()
        queue = AdmissionQueue(capacity=2, clock=clock)
        queue.on_shed = lambda item: None
        queue.offer("A", "stale-1", deadline_at=clock.now + 1.0)
        queue.offer("A", "stale-2", deadline_at=clock.now + 1.0)
        clock.now += 2.0
        assert queue.take_batch(4) == []
        assert queue.stats.shed_expired == 2
        queue.offer("A", "fresh")  # capacity is back
        assert queue.take_batch(4) == ["fresh"]

    def test_close_still_drains_queued_items(self):
        queue = AdmissionQueue(capacity=4)
        queue.offer("A", "queued")
        queue.close()
        with pytest.raises(Exception):
            queue.offer("A", "late")
        assert queue.take_batch(4) == ["queued"]
        assert queue.take_batch(4, timeout=0.01) == []


class TestTicketClaim:
    def make_ticket(self):
        return _Ticket(request=None, future=None, loop=None, enqueued=0.0)

    def test_first_claimant_wins(self):
        ticket = self.make_ticket()
        assert ticket.claim("completed")
        assert not ticket.claim("cancelled")
        assert not ticket.cancelled

    def test_cancellation_claim_marks_the_ticket(self):
        ticket = self.make_ticket()
        assert ticket.claim("cancelled")
        assert ticket.cancelled
        assert not ticket.claim("completed")


# --------------------------------------------------------------------------
class TestDegradationLadder:
    """Direct ``_execute`` calls: deterministic, no queue timing involved."""

    def test_full_rung_is_bit_identical_to_the_oracle(self, catalog):
        server = make_server(catalog)
        raw = server._execute(work_for(catalog))
        assert raw[0] == "ok"
        assert raw[OK_LEVEL] == 0 and raw[OK_LABEL] == "full"
        assert (raw[OK_SIGNATURE], raw[OK_FINGERPRINT], raw[OK_ESTIMATE]) == oracle(
            catalog, "pj", "Stubby"
        )
        assert raw[OK_FULL_ATTEMPTED] and not raw[OK_FULL_FAILED]

    def test_warm_replay_rung_reproduces_the_full_plan(self, catalog):
        server = make_server(catalog)
        full = server._execute(work_for(catalog))
        plan = FaultPlan([FaultSpec(site="server.rung.full", kind="exception")])
        with install_fault_plan(plan):
            degraded = server._execute(work_for(catalog))
        assert degraded[0] == "ok"
        assert degraded[OK_LEVEL] == 1 and degraded[OK_LABEL] == "replay_only"
        assert "full: InjectedFault" in degraded[OK_REASON]
        assert degraded[OK_FULL_ATTEMPTED] and degraded[OK_FULL_FAILED]
        # Every unit was solved by the first run; replay serves its plan.
        assert degraded[OK_SIGNATURE] == full[OK_SIGNATURE]
        assert degraded[OK_ESTIMATE] == full[OK_ESTIMATE]
        assert degraded[OK_DECISION_SINK].decision_hits > 0

    def test_cold_replay_rung_stores_nothing(self, catalog):
        # Rung 1 on a cold cache: misses leave their unit untouched and do
        # NOT record a no-op decision (which would poison later full runs).
        server = make_server(catalog)
        plan = FaultPlan([FaultSpec(site="server.rung.full", kind="exception")])
        with install_fault_plan(plan):
            degraded = server._execute(work_for(catalog))
        assert degraded[0] == "ok" and degraded[OK_LEVEL] == 1
        assert degraded[OK_DECISION_SINK].stores == 0
        assert degraded[OK_DECISION_SINK].decision_hits == 0
        # The very next undegraded request runs the true full search.
        full = server._execute(work_for(catalog))
        assert full[OK_LEVEL] == 0
        assert (full[OK_SIGNATURE], full[OK_FINGERPRINT], full[OK_ESTIMATE]) == oracle(
            catalog, "pj", "Stubby"
        )

    def test_two_failed_rungs_degrade_to_single_phase(self, catalog):
        server = make_server(catalog)
        plan = FaultPlan(
            [
                FaultSpec(site="server.rung.full", kind="exception"),
                FaultSpec(site="server.rung.replay_only", kind="exception"),
            ]
        )
        with install_fault_plan(plan):
            raw = server._execute(work_for(catalog))
        assert raw[0] == "ok"
        assert raw[OK_LEVEL] == 2 and raw[OK_LABEL] == "single_phase"
        assert plan.fires() == 2

    def test_exhausted_ladder_floors_at_unoptimized(self, catalog):
        server = make_server(catalog)
        plan = FaultPlan(
            [
                FaultSpec(site="server.rung.full", kind="exception"),
                FaultSpec(site="server.rung.replay_only", kind="exception"),
                FaultSpec(site="server.rung.single_phase", kind="exception"),
            ]
        )
        with install_fault_plan(plan):
            raw = server._execute(work_for(catalog))
        assert raw[0] == "ok"
        assert raw[OK_LEVEL] == 3 and raw[OK_LABEL] == "unoptimized"
        for rung in ("full", "replay_only", "single_phase"):
            assert f"{rung}: InjectedFault" in raw[OK_REASON]
        assert plan.fires() == 3

    def test_terminal_fault_fails_the_request_outright(self, catalog):
        server = make_server(catalog)
        plan = FaultPlan([FaultSpec(site="server.rung.full", kind="terminal")])
        with install_fault_plan(plan):
            raw = server._execute(work_for(catalog))
        assert raw[0] == "error"
        assert "TerminalInjectedFault" in raw[ERR_TRACE]
        assert raw[ERR_FULL_ATTEMPTED] and raw[ERR_FULL_FAILED]

    def test_breaker_denial_skips_the_full_rung(self, catalog):
        server = make_server(catalog)
        server._execute(work_for(catalog))  # warm the decision cache
        raw = server._execute(work_for(catalog, allow_full=False))
        assert raw[0] == "ok"
        assert raw[OK_LEVEL] == 1
        assert "circuit breaker open" in raw[OK_REASON]
        assert not raw[OK_FULL_ATTEMPTED]

    def test_expired_budget_skips_every_searching_rung(self, catalog):
        server = make_server(catalog)
        raw = server._execute(work_for(catalog, deadline_at=time.monotonic() - 1.0))
        assert raw[0] == "ok"
        assert raw[OK_LEVEL] == 3 and raw[OK_LABEL] == "unoptimized"
        assert raw[OK_REASON].count("deadline exhausted") == 3

    def test_baseline_ladder_has_no_search_rungs(self, catalog):
        # Replay/single-phase would just repeat Baseline's only move, so its
        # ladder is full → unoptimized.
        server = make_server(catalog)
        plan = FaultPlan([FaultSpec(site="server.rung.full", kind="exception")])
        with install_fault_plan(plan):
            raw = server._execute(work_for(catalog, optimizer="Baseline"))
        assert raw[0] == "ok"
        assert raw[OK_LEVEL] == 3 and raw[OK_LABEL] == "unoptimized"


class TestBudgetedOptimize:
    def test_expired_budget_raises_between_evaluations(self, catalog):
        variant = build_variant("Stubby", CLUSTER, 17)
        with pytest.raises(DeadlineExceeded):
            variant.optimize(catalog["pj"].copy(), budget=TimeBudget(seconds=0.0))

    def test_baseline_checks_its_budget_too(self, catalog):
        variant = build_variant("Baseline", CLUSTER, 17)
        with pytest.raises(DeadlineExceeded):
            variant.optimize(catalog["pj"].copy(), budget=TimeBudget(seconds=0.0))

    def test_unbounded_budget_changes_nothing(self, catalog):
        bounded = build_variant("Stubby", CLUSTER, 17)
        result = bounded.optimize(catalog["pj"].copy(), budget=TimeBudget())
        assert oracle_fingerprint(result) == oracle(catalog, "pj", "Stubby")


# --------------------------------------------------------------------------
class TestWithdrawalRace:
    def test_timeout_during_a_hung_execution_counts_cancelled_only(self, catalog):
        # The worker hangs past the client's patience; the client withdraws.
        # The eventual completion must not count (completed xor cancelled)
        # but its attribution deltas must still fold — the caches saw the
        # work, the invariant stays exact.
        plan = FaultPlan([FaultSpec(site="server.execute", kind="hang", delay_s=0.4)])

        async def main():
            server = make_server(catalog)
            cost_before = server.costs.stats_snapshot()
            async with server:
                with pytest.raises(asyncio.TimeoutError):
                    await server.submit(
                        PlanRequest(tenant="impatient", workload="pj"), timeout=0.05
                    )
            # __aexit__ stopped the server: the hung execution has drained.
            row = server.stats.tenant("impatient")
            assert row.cancelled == 1
            assert row.completed == 0 and row.failed == 0
            cost_delta = server.costs.stats_snapshot().since(cost_before)
            assert server.stats.total_cost_stats().as_dict() == cost_delta.as_dict()

        with install_fault_plan(plan):
            asyncio.run(main())


class TestShedding:
    def test_expired_in_queue_is_answered_not_dropped(self, catalog):
        async def main():
            server = make_server(catalog)
            await server.start(serve=False)  # hold dispatch so the deadline passes
            try:
                future = asyncio.ensure_future(
                    server.submit(
                        PlanRequest(tenant="late", workload="pj", deadline_s=0.05)
                    )
                )
                await asyncio.sleep(0.2)
                server.resume()
                response = await asyncio.wait_for(future, timeout=30)
            finally:
                await server.stop()
            assert response.ok and response.shed
            assert response.degradation_level == 3
            assert response.degradation == "unoptimized"
            assert "deadline expired before dispatch" in response.degradation_reason
            assert response.plan_signature  # a usable, costed plan — not a stub
            row = server.stats.tenant("late")
            assert row.shed == 1 and row.completed == 1
            assert row.degraded == 0  # shed and degraded are disjoint
            assert server.admission.stats.shed_expired == 1

        asyncio.run(main())

    def test_deadline_met_requests_are_untouched(self, catalog):
        async def main():
            server = make_server(catalog)
            async with server:
                response = await server.submit(
                    PlanRequest(tenant="prompt", workload="pj", deadline_s=30.0)
                )
            assert response.ok and not response.shed
            assert response.degradation_level == 0
            assert response.identity() == oracle(catalog, "pj", "Stubby")

        asyncio.run(main())

    def test_nonpositive_deadline_is_rejected_loudly(self, catalog):
        from repro.service import AdmissionRejected

        async def main():
            server = make_server(catalog)
            async with server:
                with pytest.raises(AdmissionRejected, match="deadline_s"):
                    await server.submit(
                        PlanRequest(tenant="t0", workload="pj", deadline_s=0.0)
                    )

        asyncio.run(main())


class TestBreakerIntegration:
    def test_poisoned_tenant_is_short_circuited_others_unaffected(self, catalog):
        plan = FaultPlan(
            [FaultSpec(site="server.rung.full", kind="exception", match={"tenant": "hot"})]
        )

        async def main():
            server = make_server(
                catalog, breaker_threshold=2, breaker_backoff_s=60.0
            )
            async with server:
                responses = []
                for _ in range(4):
                    responses.append(
                        await server.submit(PlanRequest(tenant="hot", workload="pj"))
                    )
                control = await server.submit(PlanRequest(tenant="calm", workload="pj"))
            assert all(response.ok for response in responses)
            assert all(response.degradation_level >= 1 for response in responses)
            # First two attempted (and failed) the full search; the tripped
            # breaker then short-circuits the rest straight past it.
            for response in responses[:2]:
                assert "full: InjectedFault" in response.degradation_reason
            for response in responses[2:]:
                assert "circuit breaker open" in response.degradation_reason
            breaker = server.breaker("hot")
            assert breaker.state == "open" and breaker.trips == 1
            row = server.stats.tenant("hot")
            assert row.breaker_trips == 1
            assert row.breaker_short_circuits == 2
            assert row.degraded == 4
            assert row.degraded_by_level.get("replay_only", 0) + row.degraded_by_level.get(
                "single_phase", 0
            ) + row.degraded_by_level.get("unoptimized", 0) == 4
            # The fault only fired when the full rung actually ran.
            assert plan.fires("server.rung.full") == 2
            # The quiet tenant's answer stayed bit-identical.
            assert control.degradation_level == 0
            assert control.identity() == oracle(catalog, "pj", "Stubby")

        with install_fault_plan(plan):
            asyncio.run(main())
