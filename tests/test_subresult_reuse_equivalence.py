"""The sub-result reuse differential battery (``-m equivalence``).

Reuse substitutes **data** where every other transformation restructures
jobs, so its correctness argument is different in kind: the rewritten plan
reads bytes from the catalog instead of recomputing them, and the only
acceptable proof is record-level execution equivalence.  This battery
proves it four ways:

* a seeded sweep of :meth:`~repro.verification.generator.
  RandomWorkflowGenerator.shared_prefix_pair` workflows — execute workflow
  A, register its intermediates, optimize workflow B against the warm
  catalog (the cross-workflow hit ReStore is after), and verify B's
  optimized plan against B's reference execution;
* a self-reuse sweep of fully random workflows (resubmission traffic:
  a workflow warmed by its *own* previous execution) through all three
  optimizer variants;
* every canned evaluation workload, self-warmed the same way;
* a bit-identity baseline: with the kill switch thrown, an empty catalog,
  a disabled catalog, or the transformation removed outright, the final
  plans are fingerprint-identical — the catalog machinery is provably
  invisible until it has something to offer.

A deliberately broken reuse rewrite (mutated in-test to drop ~20% of the
substituted records) must be *caught*, with the divergence bisected to the
``sub-result-reuse`` transformation — the battery is only trustworthy if it
fails loudly.  See ``docs/reuse.md`` and ``docs/verification.md``.
"""

import pytest

from repro.core.optimizer import StubbyOptimizer
from repro.core.search import StubbySearch
from repro.core.subresults import SubResultCatalog, register_workflow_outputs
from repro.core.transformations.reuse import (
    SubResultReuseTransformation,
    set_subresult_reuse_enabled,
)
from repro.dfs.dataset import Dataset
from repro.profiler import Profiler
from repro.workflow.executor import WorkflowExecutor
from repro.workloads import WORKLOAD_ORDER, build_workload
from tests.conftest import equivalence_seeds

SEEDS = equivalence_seeds()

fingerprint = StubbySearch._plan_decision_fingerprint

VARIANTS = (
    ("Stubby", StubbyOptimizer),
    ("Vertical", StubbyOptimizer.vertical_only),
    ("Horizontal", StubbyOptimizer.horizontal_only),
)


def _register_execution(catalog, workflow, base_datasets, origin=None):
    """Execute ``workflow`` and register its intermediates in ``catalog``."""
    result, _fs = WorkflowExecutor().execute(
        workflow.copy(), base_datasets, collect_outputs=True
    )
    outputs = {}
    for per_job in result.job_outputs.values():
        outputs.update(per_job)
    return register_workflow_outputs(catalog, workflow, outputs, origin=origin)


def _profiled_workload(abbr, scale=0.12):
    workload = build_workload(abbr, scale=scale)
    Profiler().profile_workflow(workload.workflow, workload.base_datasets)
    return workload


# ---------------------------------------------------------------------------
# Cross-workflow reuse: shared-prefix pairs
# ---------------------------------------------------------------------------


@pytest.mark.equivalence
@pytest.mark.parametrize("seed", SEEDS)
def test_shared_prefix_reuse_equivalence(seed, cluster, workflow_generator, differential):
    first, second = workflow_generator.shared_prefix_pair(seed)
    catalog = SubResultCatalog(cluster, enabled=True)
    registered = _register_execution(
        catalog, first.workflow, first.base_datasets, origin="producer"
    )
    assert registered > 0

    result = StubbyOptimizer(cluster, subresult_catalog=catalog).optimize(second.plan)
    report = differential.verify_result(second.workflow, second.base_datasets, result)
    assert report.equivalent, (
        f"[seed={seed}, reuse={result.subresult_reuse_applications}]\n"
        f"{report.describe()}"
    )


@pytest.mark.equivalence
def test_shared_prefix_sweep_actually_reuses(cluster, workflow_generator, differential):
    """Reuse is *chosen* (not just offered) on most shared-prefix pairs.

    The per-seed sweep above would pass vacuously if the rewrite never won
    cost arbitration; this aggregate proves the catalog hits cross-workflow
    and eliminates real jobs, while every winning plan stays equivalent.
    """
    total_applications = 0
    total_jobs_eliminated = 0
    for seed in SEEDS[:8]:
        first, second = workflow_generator.shared_prefix_pair(seed)
        catalog = SubResultCatalog(cluster, enabled=True)
        _register_execution(catalog, first.workflow, first.base_datasets, origin="producer")
        result = StubbyOptimizer(cluster, subresult_catalog=catalog).optimize(second.plan)
        total_applications += result.subresult_reuse_applications
        total_jobs_eliminated += result.jobs_eliminated_by_reuse
        if result.subresult_reuse_applications:
            # The producer registered, the optimizer probed: cross-origin.
            assert catalog.stats_snapshot().cross_origin_hits > 0
        report = differential.verify_result(second.workflow, second.base_datasets, result)
        assert report.equivalent, f"[seed={seed}]\n{report.describe()}"
    assert total_applications >= 4
    assert total_jobs_eliminated >= total_applications  # each rewrite kills >= 1 job


# ---------------------------------------------------------------------------
# Self-reuse: resubmission of random and canned workflows
# ---------------------------------------------------------------------------


@pytest.mark.equivalence
@pytest.mark.parametrize("seed", SEEDS)
def test_random_workflow_self_reuse_equivalence(seed, cluster, workflow_generator, differential):
    generated = workflow_generator.generate(seed)
    catalog = SubResultCatalog(cluster, enabled=True)
    _register_execution(
        catalog, generated.workflow, generated.base_datasets, origin="first-run"
    )
    result = StubbyOptimizer(cluster, subresult_catalog=catalog).optimize(generated.plan)
    report = differential.verify_result(
        generated.workflow, generated.base_datasets, result
    )
    assert report.equivalent, (
        f"[seed={seed}, reuse={result.subresult_reuse_applications}]\n"
        f"{report.describe()}"
    )


@pytest.mark.equivalence
@pytest.mark.parametrize("seed", SEEDS[:6])
def test_self_reuse_equivalence_across_variants(seed, cluster, workflow_generator, differential):
    generated = workflow_generator.generate(seed)
    catalog = SubResultCatalog(cluster, enabled=True)
    _register_execution(
        catalog, generated.workflow, generated.base_datasets, origin="first-run"
    )
    for variant_name, factory in VARIANTS:
        result = factory(cluster, subresult_catalog=catalog).optimize(generated.plan)
        report = differential.verify_result(
            generated.workflow, generated.base_datasets, result
        )
        assert report.equivalent, f"[seed={seed}, {variant_name}]\n{report.describe()}"


@pytest.mark.equivalence
@pytest.mark.parametrize("abbr", WORKLOAD_ORDER)
def test_canned_workload_self_reuse_equivalence(abbr, cluster, differential):
    workload = _profiled_workload(abbr)
    catalog = SubResultCatalog(cluster, enabled=True)
    _register_execution(
        catalog, workload.workflow, workload.base_datasets, origin="first-run"
    )
    result = StubbyOptimizer(cluster, subresult_catalog=catalog).optimize(workload.plan)
    report = differential.verify_result(workload.workflow, workload.base_datasets, result)
    assert report.equivalent, (
        f"[{abbr}, reuse={result.subresult_reuse_applications}]\n{report.describe()}"
    )


# ---------------------------------------------------------------------------
# Bit-identity baseline: the catalog off is the catalog absent
# ---------------------------------------------------------------------------


@pytest.mark.equivalence
def test_kill_switch_and_empty_catalog_are_bit_identical(cluster, workflow_generator):
    first, second = workflow_generator.shared_prefix_pair(57)
    warm = SubResultCatalog(cluster, enabled=True)
    _register_execution(warm, first.workflow, first.base_datasets)

    # Reference: the pre-catalog candidate set — the reuse transformation
    # removed from the search outright.
    reference = StubbyOptimizer(cluster)
    assert reference.search.vertical_transformations[0].name == "sub-result-reuse"
    assert reference.search.horizontal_transformations[0].name == "sub-result-reuse"
    del reference.search.vertical_transformations[0]
    del reference.search.horizontal_transformations[0]
    expected = fingerprint(reference.optimize(second.plan).plan)

    # An empty catalog proposes nothing.
    empty = StubbyOptimizer(cluster, subresult_catalog=SubResultCatalog(cluster, enabled=True))
    empty_result = empty.optimize(second.plan)
    assert empty_result.subresult_reuse_applications == 0
    assert fingerprint(empty_result.plan) == expected

    # The module kill switch silences even a warm catalog.
    previous = set_subresult_reuse_enabled(False)
    try:
        killed = StubbyOptimizer(cluster, subresult_catalog=warm).optimize(second.plan)
    finally:
        set_subresult_reuse_enabled(previous)
    assert killed.subresult_reuse_applications == 0
    assert fingerprint(killed.plan) == expected

    # So does a disabled catalog (STUBBY_SUBRESULT_CATALOG_ENABLED=0 path).
    disabled = SubResultCatalog(cluster, enabled=False)
    off = StubbyOptimizer(cluster, subresult_catalog=disabled).optimize(second.plan)
    assert off.subresult_reuse_applications == 0
    assert fingerprint(off.plan) == expected

    # And with the warm catalog live, reuse is actually chosen — the
    # baseline above is a genuine counterfactual, not a vacuous identity.
    live = StubbyOptimizer(cluster, subresult_catalog=warm).optimize(second.plan)
    assert live.subresult_reuse_applications >= 1
    assert live.jobs_eliminated_by_reuse >= 2


# ---------------------------------------------------------------------------
# Negative control: a broken reuse rewrite must be caught and bisected
# ---------------------------------------------------------------------------


class _LossyReuse(SubResultReuseTransformation):
    """Reuse deliberately broken to drop ~20% of the substituted records."""

    def apply(self, plan, application):
        new_plan = super().apply(plan, application)
        name = application.details["dataset"]
        vertex = new_plan.workflow.dataset(name)
        records = [dict(record) for record in vertex.dataset.records()]
        kept = [record for index, record in enumerate(records) if index % 5 != 0]
        new_plan.workflow.add_dataset(
            name,
            dataset=Dataset(name, records=kept, scale_factor=vertex.dataset.scale_factor),
            annotation=vertex.annotation,
        )
        return new_plan


@pytest.mark.equivalence
def test_broken_reuse_is_caught_and_bisected(cluster, workflow_generator, differential):
    first, second = workflow_generator.shared_prefix_pair(42)
    catalog = SubResultCatalog(cluster, enabled=True)
    _register_execution(catalog, first.workflow, first.base_datasets, origin="producer")

    optimizer = StubbyOptimizer(cluster, subresult_catalog=catalog)
    optimizer.search.vertical_transformations[0] = _LossyReuse(catalog)
    optimizer.search.horizontal_transformations[0] = _LossyReuse(catalog)

    result = optimizer.optimize(second.plan)
    assert result.subresult_reuse_applications >= 1  # the broken rewrite won

    report = differential.verify_result(second.workflow, second.base_datasets, result)
    assert not report.equivalent

    # Dataset-level diagnostics: records went missing, with samples.
    divergence = report.divergences[0]
    assert divergence.missing_count > 0
    assert divergence.missing_sample

    # Bisection names the guilty transformation.
    assert report.culprit is not None
    assert "sub-result-reuse" in report.culprit.transformations

    text = report.describe()
    assert "NOT equivalent" in text
    assert "sub-result-reuse" in text
