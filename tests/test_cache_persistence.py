"""Persistence of the cost-service cache: round-trips and hostile files.

The contract under test is the one ``docs/costing.md``'s persistence section
documents: a persisted cache warm-starts a later service with bit-identical
estimates, is keyed by (format version, cost-model version, cluster spec),
and is rejected *wholesale* — without raising — whenever any of those stamps
mismatch or the file is corrupt, truncated, or not a cache at all.  Saves
are atomic, so concurrent writers race to a complete file, never a torn one.
"""

import os
import pickle
import threading

import pytest

import repro.whatif.service as service_module
from repro.cluster import ClusterSpec
from repro.profiler import Profiler
from repro.verification import (
    FaultPlan,
    FaultSpec,
    corrupt_file,
    install_fault_plan,
    truncate_file,
)
from repro.whatif.service import (
    CACHE_FORMAT_VERSION,
    CACHE_MAX_ENTRIES_ENV_VAR,
    CACHE_PATH_ENV_VAR,
    CostService,
    cluster_cache_key,
    resolve_cache_max_entries,
    resolve_cache_path,
)
from repro.workloads import build_workload

CLUSTER = ClusterSpec.paper_cluster()


@pytest.fixture(scope="module")
def profiled_workflow():
    workload = build_workload("PJ", scale=0.1)
    Profiler().profile_workflow(workload.workflow, workload.base_datasets)
    return workload.workflow


def _warmed_service(profiled_workflow, **kwargs):
    service = CostService(CLUSTER, **kwargs)
    service.estimate_workflow(profiled_workflow)
    return service


class TestRoundTrip:
    def test_saved_cache_warm_starts_identically(self, tmp_path, profiled_workflow):
        path = str(tmp_path / "costs.cache")
        source = _warmed_service(profiled_workflow)
        cold = source.estimate_workflow(profiled_workflow)
        written = source.save_cache(path)
        assert written > 0

        warmed = CostService(CLUSTER, cache_path=path)
        assert warmed.last_load is not None and warmed.last_load.loaded
        assert warmed.last_load.entries == written
        estimate = warmed.estimate_workflow(profiled_workflow)
        # Bit-identical reuse: the exactness contract survives the disk trip.
        assert estimate.total_s == cold.total_s
        assert {n: e.total_s for n, e in estimate.per_job.items()} == {
            n: e.total_s for n, e in cold.per_job.items()
        }
        # Every job estimate was served from the warm cache.
        assert warmed.stats.job_cache_hits == warmed.stats.job_queries
        assert warmed.stats.job_full_recosts == 0

    def test_save_requires_a_path(self, profiled_workflow):
        service = _warmed_service(profiled_workflow)
        with pytest.raises(ValueError, match="no cache path"):
            service.save_cache()
        with pytest.raises(ValueError, match="no cache path"):
            service.load_cache()

    def test_missing_file_reports_cleanly(self, tmp_path):
        service = CostService(CLUSTER, cache_path=str(tmp_path / "absent.cache"))
        assert service.last_load is not None
        assert not service.last_load.loaded
        assert "no cache file" in service.last_load.reason

    def test_cache_disabled_service_skips_loading(self, tmp_path, profiled_workflow):
        path = str(tmp_path / "costs.cache")
        _warmed_service(profiled_workflow).save_cache(path)
        passthrough = CostService(CLUSTER, enable_cache=False, cache_path=path)
        assert passthrough.last_load is None
        passthrough.estimate_workflow(profiled_workflow)
        assert passthrough.stats.job_cache_hits == 0


class TestHostileFiles:
    """Corrupt, truncated, or mismatched files contribute nothing — quietly."""

    def _assert_rejected_but_functional(self, service, reason_fragment, profiled_workflow):
        assert service.last_load is not None
        assert not service.last_load.loaded
        assert reason_fragment in service.last_load.reason
        # The service is fully usable afterwards; the first estimate is cold.
        estimate = service.estimate_workflow(profiled_workflow)
        assert estimate.total_s > 0
        assert service.stats.job_full_recosts > 0

    def test_corrupt_file(self, tmp_path, profiled_workflow):
        # The chaos harness's bit-rot model: a complete, valid cache whose
        # bytes were replaced with same-length seeded garbage.
        path = str(tmp_path / "corrupt.cache")
        _warmed_service(profiled_workflow).save_cache(path)
        assert corrupt_file(path, seed=7)
        service = CostService(CLUSTER, cache_path=path)
        self._assert_rejected_but_functional(service, "unreadable", profiled_workflow)

    def test_truncated_file(self, tmp_path, profiled_workflow):
        path = str(tmp_path / "truncated.cache")
        _warmed_service(profiled_workflow).save_cache(path)
        assert truncate_file(path, fraction=0.5)
        service = CostService(CLUSTER, cache_path=path)
        self._assert_rejected_but_functional(service, "unreadable", profiled_workflow)

    def test_fault_plan_corruption_at_the_load_site(self, tmp_path, profiled_workflow):
        # End-to-end through the injection site: a ``costcache.load``
        # corrupt spec mangles the file at the moment the service goes to
        # read it — the load is rejected wholesale, quietly, and the plan's
        # accounting shows exactly one fire to reconcile against.
        path = str(tmp_path / "ambushed.cache")
        _warmed_service(profiled_workflow).save_cache(path)
        plan = FaultPlan(
            [FaultSpec(site="costcache.load", kind="corrupt", max_fires=1)],
            seed=11,
            name="bit-rot-on-load",
        )
        with install_fault_plan(plan):
            service = CostService(CLUSTER, cache_path=path)
        assert plan.fires("costcache.load") == 1
        self._assert_rejected_but_functional(service, "unreadable", profiled_workflow)

    def test_wrong_payload_shape(self, tmp_path, profiled_workflow):
        path = tmp_path / "list.cache"
        path.write_bytes(pickle.dumps([1, 2, 3]))
        service = CostService(CLUSTER, cache_path=str(path))
        self._assert_rejected_but_functional(service, "malformed", profiled_workflow)

    def test_format_version_mismatch(self, tmp_path, profiled_workflow):
        path = tmp_path / "future.cache"
        path.write_bytes(
            pickle.dumps(
                {
                    "format_version": CACHE_FORMAT_VERSION + 1,
                    "model_version": service_module.COST_MODEL_VERSION,
                    "cluster_key": cluster_cache_key(CLUSTER),
                    "entries": [],
                }
            )
        )
        service = CostService(CLUSTER, cache_path=str(path))
        self._assert_rejected_but_functional(service, "format version", profiled_workflow)

    def test_model_version_mismatch(self, tmp_path, profiled_workflow, monkeypatch):
        path = str(tmp_path / "old_model.cache")
        _warmed_service(profiled_workflow).save_cache(path)
        # A later PR bumps the model version: yesterday's cache self-invalidates.
        monkeypatch.setattr(
            service_module, "COST_MODEL_VERSION", service_module.COST_MODEL_VERSION + 1
        )
        service = CostService(CLUSTER, cache_path=path)
        self._assert_rejected_but_functional(service, "model version", profiled_workflow)

    def test_partially_malformed_entries_absorb_nothing(self, tmp_path, profiled_workflow):
        # All-or-nothing: valid rows ahead of one bad row must NOT slip in.
        good = _warmed_service(profiled_workflow)
        rows = good._entries_snapshot()
        assert rows
        path = tmp_path / "half_right.cache"
        path.write_bytes(
            pickle.dumps(
                {
                    "format_version": CACHE_FORMAT_VERSION,
                    "model_version": service_module.COST_MODEL_VERSION,
                    "cluster_key": cluster_cache_key(CLUSTER),
                    "entries": rows + [("estimate", ("sig",))],  # 2-tuple row
                }
            )
        )
        service = CostService(CLUSTER, cache_path=str(path))
        self._assert_rejected_but_functional(service, "malformed", profiled_workflow)

    def test_pickle_with_forbidden_globals_is_refused(self, tmp_path, profiled_workflow):
        # A cache file is a pickle, and pickle is a program: a crafted file
        # naming an arbitrary callable must be refused without invoking it.
        class Exploit:
            def __reduce__(self):
                marker = str(tmp_path / "pwned")
                return (os.system, (f"touch {marker}",))

        path = tmp_path / "hostile.cache"
        path.write_bytes(pickle.dumps({"format_version": Exploit()}))
        service = CostService(CLUSTER, cache_path=str(path))
        self._assert_rejected_but_functional(service, "unreadable", profiled_workflow)
        assert not (tmp_path / "pwned").exists()

    def test_cluster_spec_mismatch(self, tmp_path, profiled_workflow):
        path = str(tmp_path / "other_cluster.cache")
        _warmed_service(profiled_workflow).save_cache(path)
        service = CostService(ClusterSpec.small_test_cluster(), cache_path=path)
        assert service.last_load is not None
        assert not service.last_load.loaded
        assert "different ClusterSpec" in service.last_load.reason
        # Same spec *values* (not identity) must be accepted.
        service = CostService(ClusterSpec.paper_cluster(), cache_path=path)
        assert service.last_load.loaded


class TestConcurrentWriters:
    def test_racing_saves_leave_a_loadable_file(self, tmp_path, profiled_workflow):
        path = str(tmp_path / "contended.cache")
        services = [_warmed_service(profiled_workflow) for _ in range(4)]
        errors = []

        def save(service):
            try:
                for _ in range(5):
                    service.save_cache(path)
            except Exception as exc:  # pragma: no cover - the failure branch
                errors.append(exc)

        threads = [threading.Thread(target=save, args=(s,)) for s in services]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        # One writer won; whoever it was, the file is complete and valid.
        report = CostService(CLUSTER).load_cache(path)
        assert report.loaded and report.entries > 0
        # No temporary droppings left behind.
        assert os.listdir(tmp_path) == ["contended.cache"]


class TestPathResolution:
    def test_explicit_path_wins(self, monkeypatch):
        monkeypatch.setenv(CACHE_PATH_ENV_VAR, "/elsewhere/env.cache")
        assert resolve_cache_path("/explicit.cache") == "/explicit.cache"
        assert resolve_cache_path(None) == "/elsewhere/env.cache"
        # Empty string (either source) disables persistence.
        assert resolve_cache_path("") is None
        monkeypatch.setenv(CACHE_PATH_ENV_VAR, "")
        assert resolve_cache_path(None) is None

    def test_env_var_warm_starts_an_optimizer(self, tmp_path, profiled_workflow, monkeypatch):
        from repro.core.optimizer import StubbyOptimizer

        path = str(tmp_path / "env.cache")
        _warmed_service(profiled_workflow).save_cache(path)
        monkeypatch.setenv(CACHE_PATH_ENV_VAR, path)
        optimizer = StubbyOptimizer(CLUSTER)
        assert optimizer.costs.last_load is not None and optimizer.costs.last_load.loaded
        # A shared service passed in explicitly is never overridden by the env.
        shared = CostService(CLUSTER)
        assert StubbyOptimizer(CLUSTER, cost_service=shared).costs is shared


class TestCompactionOnPersist:
    def test_max_entries_bounds_the_file(self, tmp_path, profiled_workflow):
        service = _warmed_service(profiled_workflow)
        full = len(service._entries_snapshot())
        assert full > 4
        path = str(tmp_path / "compact.cache")
        written = service.save_cache(path, max_entries=4)
        assert written == 4

        fresh = CostService(CLUSTER)
        report = fresh.load_cache(path)
        assert report.loaded and report.entries == 4

    def test_compacted_file_is_a_valid_warm_start(self, tmp_path, profiled_workflow):
        service = _warmed_service(profiled_workflow)
        path = str(tmp_path / "compact.cache")
        service.save_cache(path, max_entries=6)

        warmed = CostService(CLUSTER, cache_path=path)
        assert warmed.last_load is not None and warmed.last_load.loaded
        # Warm-started estimates are bit-identical to cold ones.
        cold = CostService(CLUSTER, enable_cache=False)
        assert (
            warmed.estimate_workflow(profiled_workflow).total_s
            == cold.estimate_workflow(profiled_workflow).total_s
        )
        # The partial store contributed at least one job-level cache hit.
        assert warmed.stats.job_cache_hits + warmed.stats.job_dataflow_hits > 0

    def test_compaction_keeps_most_recently_used_entries(self, tmp_path, profiled_workflow):
        service = _warmed_service(profiled_workflow)
        # Touch every entry again so recency ordering is well-defined.  The
        # documented guarantee is *stripe-granular* recency: the compacted
        # snapshot drains each stripe from its MRU end, so within every
        # stripe the kept rows must form a suffix of its LRU→MRU order —
        # regardless of how signatures hash across stripes in this process.
        service.estimate_workflow(profiled_workflow)
        compacted = service._entries_snapshot(max_entries=3)
        assert len(compacted) == 3
        kept = {(level, signature) for level, signature, _v, _o in compacted}
        for level, cache in (("estimate", service._cache), ("dataflow", service._dataflow_cache)):
            for rows in cache.shard_items():
                flags = [(level, signature) in kept for signature, _v, _o in rows]
                first_kept = flags.index(True) if True in flags else len(flags)
                assert all(flags[first_kept:]), (
                    f"kept rows are not an MRU suffix of their {level} stripe"
                )

    def test_env_var_bounds_saves_by_default(self, tmp_path, profiled_workflow, monkeypatch):
        service = _warmed_service(profiled_workflow)
        path = str(tmp_path / "env-compact.cache")
        monkeypatch.setenv(CACHE_MAX_ENTRIES_ENV_VAR, "5")
        assert service.save_cache(path) == 5
        # Explicit argument beats the environment.
        assert service.save_cache(path, max_entries=3) == 3

    def test_resolve_cache_max_entries(self, monkeypatch):
        assert resolve_cache_max_entries(7) == 7
        assert resolve_cache_max_entries(0) is None
        monkeypatch.setenv(CACHE_MAX_ENTRIES_ENV_VAR, "12")
        assert resolve_cache_max_entries(None) == 12
        monkeypatch.setenv(CACHE_MAX_ENTRIES_ENV_VAR, "not-a-number")
        assert resolve_cache_max_entries(None) is None
        monkeypatch.setenv(CACHE_MAX_ENTRIES_ENV_VAR, "")
        assert resolve_cache_max_entries(None) is None
