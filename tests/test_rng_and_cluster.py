"""Tests for the deterministic RNG and the cluster specification."""

import pytest

from repro.cluster import ClusterSpec, NodeSpec
from repro.common.rng import DeterministicRNG


class TestDeterministicRNG:
    def test_same_seed_same_stream(self):
        a = DeterministicRNG(3)
        b = DeterministicRNG(3)
        assert [a.randint(0, 100) for _ in range(10)] == [b.randint(0, 100) for _ in range(10)]

    def test_different_seeds_differ(self):
        a = DeterministicRNG(1)
        b = DeterministicRNG(2)
        assert [a.randint(0, 10_000) for _ in range(10)] != [b.randint(0, 10_000) for _ in range(10)]

    def test_fork_is_deterministic(self):
        a = DeterministicRNG(5).fork("child")
        b = DeterministicRNG(5).fork("child")
        assert a.random() == b.random()

    def test_fork_is_independent_of_parent_consumption(self):
        parent1 = DeterministicRNG(5)
        parent1.random()
        parent2 = DeterministicRNG(5)
        assert parent1.fork("x").random() == parent2.fork("x").random()

    def test_zipf_in_domain(self):
        rng = DeterministicRNG(7)
        samples = [rng.zipf(20) for _ in range(200)]
        assert all(1 <= s <= 20 for s in samples)

    def test_zipf_skew(self):
        rng = DeterministicRNG(7)
        samples = [rng.zipf(50, alpha=1.5) for _ in range(500)]
        ones = sum(1 for s in samples if s == 1)
        assert ones > len(samples) * 0.2

    def test_zipf_rejects_bad_domain(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).zipf(0)

    def test_sample_and_choice(self):
        rng = DeterministicRNG(11)
        items = list(range(20))
        sampled = rng.sample(items, 5)
        assert len(set(sampled)) == 5
        assert rng.choice(items) in items


class TestNodeSpec:
    def test_default_is_valid(self):
        NodeSpec().validate()

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            NodeSpec(map_slots=0).validate()

    def test_rejects_bad_disk(self):
        with pytest.raises(ValueError):
            NodeSpec(disk_read_mb_per_s=0).validate()


class TestClusterSpec:
    def test_paper_cluster_slot_counts(self):
        cluster = ClusterSpec.paper_cluster()
        assert cluster.num_nodes == 51
        assert cluster.total_map_slots == 51 * 3
        assert cluster.total_reduce_slots == 51 * 2

    def test_map_waves(self):
        cluster = ClusterSpec.paper_cluster()
        assert cluster.map_waves(0) == 0
        assert cluster.map_waves(1) == 1
        assert cluster.map_waves(cluster.total_map_slots) == 1
        assert cluster.map_waves(cluster.total_map_slots + 1) == 2

    def test_reduce_waves(self):
        cluster = ClusterSpec.paper_cluster()
        assert cluster.reduce_waves(cluster.total_reduce_slots * 3) == 3

    def test_scaled_changes_node_count_only(self):
        cluster = ClusterSpec.paper_cluster().scaled(10)
        assert cluster.num_nodes == 10
        assert cluster.node == ClusterSpec.paper_cluster().node

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=0)
        with pytest.raises(ValueError):
            ClusterSpec(network_mb_per_s=0)

    def test_total_memory(self):
        cluster = ClusterSpec.small_test_cluster()
        assert cluster.total_memory_mb == cluster.num_nodes * cluster.node.memory_mb
