"""Copy-on-write plan semantics: sharing, privatization, and aliasing hazards.

``Plan.copy`` / ``Workflow.copy`` are structurally shared clones: the vertex
objects are the *same* objects until a mutation privatizes them through the
CoW accessors (``mutate_job`` / ``update_job`` / ``set_job_config`` /
``add_dataset``).  These tests pin the contract from both sides:

* the *sharing* side — copying performs no vertex copies, unchanged vertices
  stay identical objects, and the copy counters record the saved work;
* the *isolation* side — mutating a candidate plan (through any of the five
  transformation kinds, and through every mutation API) never changes its
  parent's structural signature, configurations, merge lineage, or history.

The property sweep runs every transformation over seeded random workflows —
the same generator the differential-equivalence battery replays — so any CoW
leak shows up as a parent-fingerprint diff with the guilty seed attached.
"""

import pytest

from repro.common.hashing import stable_hash
from repro.core.plan import Plan
from repro.core.transformations import (
    HorizontalPacking,
    InterJobVerticalPacking,
    IntraJobVerticalPacking,
    PartitionFunctionTransformation,
)
from repro.core.transformations.configuration import ConfigurationTransformation
from repro.profiler import Profiler
from repro.verification import RandomWorkflowGenerator
from repro.workflow.graph import COPY_COUNTERS
from repro.workloads import build_workload

STRUCTURAL_TRANSFORMATIONS = [
    IntraJobVerticalPacking(),
    InterJobVerticalPacking(),
    PartitionFunctionTransformation(),
    HorizontalPacking(),
]

#: Seeds for the random-workflow aliasing sweep (distinct from the
#: equivalence battery's band so the two explore different regions).
PROPERTY_SEEDS = [7100 + i for i in range(10)]


def _profiled_plan(abbr="IR", scale=0.15):
    workload = build_workload(abbr, scale=scale)
    Profiler().profile_workflow(workload.workflow, workload.base_datasets)
    return workload, workload.plan


def _plan_fingerprint(plan):
    """Everything about a plan that a CoW leak could corrupt, as plain data.

    Beyond the structural :meth:`Plan.signature` (pipelines, partitioners,
    pruning filters, chaining), this captures per-job configurations, the
    identity of every annotation object (annotations are immutable, so a
    leak must rebind them), condition flags, and the plan-level history and
    merge lineage.
    """
    per_job = {}
    for vertex in plan.workflow.jobs:
        annotations = vertex.annotations
        per_job[vertex.name] = (
            tuple(sorted(vertex.job.config.as_dict().items())),
            id(annotations.profile),
            id(annotations.schema),
            id(annotations.partition_constraint),
            tuple(sorted((k, str(v)) for k, v in annotations.conditions.items())),
            tuple(
                tuple(sorted(p.input_partition_filter.items())) for p in vertex.job.pipelines
            ),
        )
    return (
        plan.signature(),
        tuple(sorted(per_job.items())),
        tuple(plan.history),
        tuple(sorted(plan.merge_lineage.items())),
    )


def _workflow_hash(plan):
    """Stable content hash of the plan's structural signature."""
    return stable_hash((plan.signature(),))


def _vandalize(candidate):
    """Mutate a candidate plan through every public mutation channel."""
    for name in list(candidate.workflow.job_names):
        vertex = candidate.workflow.job(name)
        candidate.set_job_config(
            name, vertex.job.config.replace(io_sort_mb=vertex.job.config.io_sort_mb + 32)
        )
        owned = candidate.mutate_vertex(name, copy_job=False)
        owned.annotations.conditions["vandalized"] = True
        owned.annotations.profile = None
        pipelined = candidate.mutate_vertex(name)
        for pipeline in pipelined.job.pipelines:
            pipeline.input_partition_filter["bogus-dataset"] = (0,)
    candidate.record_merge("bogus+merge", tuple(candidate.workflow.job_names)[:1])
    candidate.record(
        ConfigurationTransformation.application_for("bogus", {"io_sort_mb": 1}).as_applied()
    )


class TestStructuralSharing:
    def test_copy_shares_vertex_objects_and_copies_nothing(self):
        _, plan = _profiled_plan()
        COPY_COUNTERS.reset()
        clone = plan.copy()
        assert COPY_COUNTERS.vertex_copies == 0
        assert COPY_COUNTERS.workflow_copies == 1
        assert COPY_COUNTERS.legacy_vertex_copies == plan.num_jobs
        for name in plan.job_names:
            assert clone.workflow.job(name) is plan.workflow.job(name)

    def test_set_job_config_privatizes_only_the_touched_vertex(self):
        _, plan = _profiled_plan()
        clone = plan.copy()
        target = plan.job_names[0]
        before = plan.workflow.job(target)
        old_config = before.job.config
        clone.set_job_config(target, old_config.replace(num_reduce_tasks=77))
        assert clone.workflow.job(target) is not before
        assert plan.workflow.job(target) is before
        assert plan.workflow.job(target).job.config == old_config
        for name in plan.job_names:
            if name != target:
                assert clone.workflow.job(name) is plan.workflow.job(name)
        assert clone.dirty_jobs() == {target}

    def test_mutation_on_the_parent_side_also_cows(self):
        """After a copy, the *original* must privatize its mutations too."""
        _, plan = _profiled_plan()
        clone = plan.copy()
        target = plan.job_names[0]
        clone_fingerprint = _plan_fingerprint(clone)
        plan.set_job_config(
            target, plan.workflow.job(target).job.config.replace(num_reduce_tasks=63)
        )
        assert _plan_fingerprint(clone) == clone_fingerprint

    def test_mutate_job_privatizes_borrowed_payload_before_pipeline_edits(self):
        """copy_job=False borrows the job; a later in-place mutation must copy it."""
        _, plan = _profiled_plan()
        clone = plan.copy()
        target = plan.job_names[0]
        borrowed = clone.mutate_vertex(target, copy_job=False)
        assert borrowed.job is plan.workflow.job(target).job
        owned = clone.mutate_vertex(target)  # full privatization on demand
        assert owned is borrowed
        assert owned.job is not plan.workflow.job(target).job
        owned.job.pipelines[0].input_partition_filter["bogus"] = (1,)
        assert "bogus" not in plan.workflow.job(target).job.pipelines[0].input_partition_filter

    def test_add_dataset_cows_shared_dataset_vertices(self):
        workload, plan = _profiled_plan()
        clone = plan.copy()
        name = workload.workflow.base_datasets()[0].name
        shared = plan.workflow.dataset(name)
        clone.workflow.add_dataset(name, annotation=None, dataset=workload.base_datasets[name])
        # Enriching with data privatized the clone's vertex, not the parent's.
        assert clone.workflow.dataset(name) is not shared or shared.dataset is not None
        assert plan.workflow.dataset(name) is shared

    def test_profiler_attach_does_not_leak_into_shared_ancestor(self):
        workload = build_workload("IR", scale=0.15)
        pristine = workload.workflow.copy()
        assert all(not v.annotations.has_profile for v in pristine.jobs)
        Profiler().profile_workflow(pristine, workload.base_datasets)
        assert all(v.annotations.has_profile for v in pristine.jobs)
        # The workload's own workflow (the shared ancestor) stayed pristine.
        assert all(not v.annotations.has_profile for v in workload.workflow.jobs)


class TestRecordMergeAliasing:
    def test_record_merge_on_clone_does_not_alias_parent_dict(self):
        _, plan = _profiled_plan()
        plan.record_merge("seed+merge", tuple(plan.job_names[:2]))
        clone = plan.copy()
        clone.record_merge("clone+merge", tuple(clone.job_names[:1]))
        assert "clone+merge" not in plan.merge_lineage
        assert "seed+merge" in clone.merge_lineage
        plan.record_merge("parent+merge", tuple(plan.job_names[:1]))
        assert "parent+merge" not in clone.merge_lineage

    def test_history_append_on_clone_does_not_alias_parent_list(self):
        _, plan = _profiled_plan()
        clone = plan.copy()
        clone.record(
            ConfigurationTransformation.application_for("x", {"io_sort_mb": 1}).as_applied()
        )
        assert plan.history == []


class TestAliasingProperty:
    """Mutating any candidate never changes its parent (all five kinds)."""

    @pytest.mark.parametrize("transformation", STRUCTURAL_TRANSFORMATIONS, ids=lambda t: t.name)
    def test_structural_candidates_never_touch_parent(self, transformation):
        generator = RandomWorkflowGenerator()
        # Random workflows plus the canned workloads whose annotations admit
        # every rewrite (partition-function pruning needs the US/LA filter
        # annotations; intra-job packing fires on IR).
        plans = [generator.generate(seed).plan for seed in PROPERTY_SEEDS]
        plans.extend(_profiled_plan(abbr)[1] for abbr in ("IR", "US", "LA"))
        applied = 0
        for index, plan in enumerate(plans):
            applications = transformation.find_applications(
                plan, tuple(plan.workflow.job_names)
            )
            before = _plan_fingerprint(plan)
            before_hash = _workflow_hash(plan)
            for application in applications:
                candidate = transformation.apply(plan, application)
                _vandalize(candidate)
                applied += 1
            assert _plan_fingerprint(plan) == before, (
                f"plan #{index}: {transformation.name} candidate mutated its parent"
            )
            assert _workflow_hash(plan) == before_hash, index
        assert applied > 0, f"{transformation.name} never applied in the sweep"

    def test_configuration_candidates_never_touch_parent(self):
        generator = RandomWorkflowGenerator()
        for seed in PROPERTY_SEEDS[:5]:
            plan = generator.generate(seed).plan
            before = _plan_fingerprint(plan)
            for name in list(plan.workflow.job_names):
                application = ConfigurationTransformation.application_for(
                    name, {"io_sort_mb": 256}
                )
                candidate = ConfigurationTransformation().apply(
                    plan,
                    type(application)(
                        transformation=application.transformation,
                        target_jobs=application.target_jobs,
                        details={"job": name, "settings": {"io_sort_mb": 256}},
                    ),
                )
                _vandalize(candidate)
            assert _plan_fingerprint(plan) == before, seed

    def test_chosen_settings_replay_never_touches_candidate_record(self):
        """The search's settings replay copies before mutating (CoW-cheap)."""
        _, plan = _profiled_plan("IR")
        record_plan = plan.copy()
        before = _plan_fingerprint(record_plan)
        optimized = record_plan.copy()
        ConfigurationTransformation.apply_settings_in_place(
            optimized, {plan.job_names[0]: {"io_sort_mb": 512}}
        )
        assert _plan_fingerprint(record_plan) == before
        assert _plan_fingerprint(optimized) != before
