"""Tests for the simulated DFS: layouts, datasets, and the filesystem."""

import pytest

from repro.common.errors import ExecutionError
from repro.dfs import (
    DataLayout,
    Dataset,
    InMemoryFileSystem,
    PartitionScheme,
    RangePartitioning,
)


class TestRangePartitioning:
    def test_partition_index(self):
        ranges = RangePartitioning(field="x", split_points=(10.0, 20.0))
        assert ranges.partition_index(5) == 0
        assert ranges.partition_index(10) == 1
        assert ranges.partition_index(19.9) == 1
        assert ranges.partition_index(25) == 2

    def test_none_goes_to_first_partition(self):
        ranges = RangePartitioning(field="x", split_points=(10.0,))
        assert ranges.partition_index(None) == 0

    def test_num_partitions(self):
        assert RangePartitioning("x", (1.0, 2.0, 3.0)).num_partitions == 4

    def test_partitions_overlapping(self):
        ranges = RangePartitioning(field="x", split_points=(100.0, 200.0, 300.0))
        assert ranges.partitions_overlapping(0, 100) == (0,)
        assert ranges.partitions_overlapping(150, 250) == (1, 2)
        assert ranges.partitions_overlapping(50, 50) == ()

    def test_overlap_covers_all_for_full_range(self):
        ranges = RangePartitioning(field="x", split_points=(100.0, 200.0))
        overlapping = ranges.partitions_overlapping(0, 1_000)
        assert set(overlapping) == {0, 1, 2}


class TestPartitionScheme:
    def test_hash_requires_fields(self):
        with pytest.raises(ValueError):
            PartitionScheme(kind="hash")

    def test_range_requires_ranges(self):
        with pytest.raises(ValueError):
            PartitionScheme(kind="range", fields=("x",))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            PartitionScheme(kind="weird")

    def test_factories(self):
        assert PartitionScheme.hashed("a").kind == "hash"
        assert PartitionScheme.ranged("a", [1.0]).ranges.num_partitions == 2
        assert PartitionScheme.unpartitioned().kind == "none"


class TestDataLayout:
    def test_compression_ratio_bounds(self):
        with pytest.raises(ValueError):
            DataLayout(compression_ratio=0.0)
        with pytest.raises(ValueError):
            DataLayout(compression_ratio=1.5)

    def test_stored_bytes_with_compression(self):
        layout = DataLayout(compressed=True, compression_ratio=0.5)
        assert layout.stored_bytes(1000) == 500

    def test_with_helpers_return_new_layouts(self):
        layout = DataLayout()
        ranged = layout.with_partitioning(PartitionScheme.ranged("x", [1.0]))
        assert ranged.partitioning.kind == "range"
        assert layout.partitioning.kind == "none"
        assert layout.with_sort_fields(["x"]).sort_fields == ("x",)
        assert layout.with_compression(True).compressed


def _records(n=30):
    return [{"k": float(i % 5), "v": float(i)} for i in range(n)]


class TestDataset:
    def test_load_and_counts(self):
        dataset = Dataset("d", records=_records())
        assert dataset.num_records == 30
        assert dataset.raw_bytes > 0
        assert dataset.num_partitions == 1

    def test_range_layout_partitions_records(self):
        layout = DataLayout(partitioning=PartitionScheme.ranged("v", [10.0, 20.0]))
        dataset = Dataset("d", records=_records(), layout=layout)
        assert dataset.num_partitions == 3
        assert all(r["v"] < 10 for r in dataset.partitions[0].records)
        assert all(10 <= r["v"] < 20 for r in dataset.partitions[1].records)

    def test_hash_layout_groups_keys(self):
        layout = DataLayout(partitioning=PartitionScheme.hashed("k"))
        dataset = Dataset("d", records=_records(200), layout=layout)
        for value in range(5):
            partitions = {
                p.index for p in dataset.partitions if any(r["k"] == value for r in p.records)
            }
            assert len(partitions) == 1

    def test_sorted_layout_orders_partitions(self):
        layout = DataLayout(sort_fields=("v",))
        dataset = Dataset("d", records=list(reversed(_records())), layout=layout)
        values = [r["v"] for r in dataset.partitions[0].records]
        assert values == sorted(values)

    def test_partition_pruned_read(self):
        layout = DataLayout(partitioning=PartitionScheme.ranged("v", [10.0, 20.0]))
        dataset = Dataset("d", records=_records(), layout=layout)
        pruned = list(dataset.records(partition_indexes=(0,)))
        assert pruned and all(r["v"] < 10 for r in pruned)

    def test_logical_size_uses_scale_factor(self):
        dataset = Dataset("d", records=_records(), scale_factor=100.0)
        assert dataset.logical_bytes == pytest.approx(dataset.raw_bytes * 100.0)
        assert dataset.logical_records == pytest.approx(dataset.num_records * 100.0)

    def test_distinct_count_and_field_range(self):
        dataset = Dataset("d", records=_records())
        assert dataset.distinct_count(["k"]) == 5
        assert dataset.field_range("v") == (0.0, 29.0)
        assert dataset.field_range("missing") is None

    def test_relayout_preserves_records(self):
        dataset = Dataset("d", records=_records())
        relaid = dataset.relayout(DataLayout(partitioning=PartitionScheme.hashed("k")))
        assert relaid.num_records == dataset.num_records
        assert relaid.num_partitions >= 1


class TestInMemoryFileSystem:
    def test_put_get_roundtrip(self):
        fs = InMemoryFileSystem()
        fs.put(Dataset("a", records=_records()))
        assert fs.get("a").num_records == 30

    def test_missing_dataset_raises(self):
        with pytest.raises(ExecutionError):
            InMemoryFileSystem().get("nope")

    def test_exists_delete_names(self):
        fs = InMemoryFileSystem()
        fs.put(Dataset("a", records=[]))
        fs.put(Dataset("b", records=[]))
        assert fs.exists("a")
        fs.delete("a")
        assert not fs.exists("a")
        assert fs.names() == ["b"]

    def test_io_accounting(self):
        fs = InMemoryFileSystem()
        fs.put(Dataset("a", records=_records()))
        written = fs.total_bytes_written
        assert written > 0
        fs.get("a")
        assert fs.total_bytes_read > 0

    def test_peek_does_not_raise(self):
        fs = InMemoryFileSystem()
        assert fs.peek("missing") is None
