"""Tests for record helpers in repro.common.records."""

import pytest
from hypothesis import given, strategies as st

from repro.common.records import (
    merge,
    project,
    record_size_bytes,
    records_equal,
    sort_key_for,
)


class TestProject:
    def test_keeps_only_requested_fields(self):
        record = {"a": 1, "b": 2, "c": 3}
        assert project(record, ["a", "c"]) == {"a": 1, "c": 3}

    def test_missing_fields_are_skipped(self):
        assert project({"a": 1}, ["a", "zzz"]) == {"a": 1}

    def test_empty_field_list(self):
        assert project({"a": 1}, []) == {}

    def test_does_not_mutate_input(self):
        record = {"a": 1}
        project(record, ["a"])
        assert record == {"a": 1}


class TestMerge:
    def test_later_records_win(self):
        assert merge({"a": 1, "b": 2}, {"b": 3}) == {"a": 1, "b": 3}

    def test_merge_of_nothing_is_empty(self):
        assert merge() == {}

    def test_three_way_merge(self):
        assert merge({"a": 1}, {"b": 2}, {"c": 3}) == {"a": 1, "b": 2, "c": 3}


class TestSortKey:
    def test_orders_numerically(self):
        low = sort_key_for({"x": 2}, ["x"])
        high = sort_key_for({"x": 10}, ["x"])
        assert low < high

    def test_none_sorts_before_values(self):
        none_key = sort_key_for({"x": None}, ["x"])
        value_key = sort_key_for({"x": -100}, ["x"])
        assert none_key < value_key

    def test_missing_field_treated_as_none(self):
        assert sort_key_for({}, ["x"]) == sort_key_for({"x": None}, ["x"])

    def test_strings_and_numbers_do_not_collide(self):
        assert sort_key_for({"x": "5"}, ["x"]) != sort_key_for({"x": 5}, ["x"])

    def test_multi_field_ordering(self):
        a = sort_key_for({"x": 1, "y": 9}, ["x", "y"])
        b = sort_key_for({"x": 1, "y": 10}, ["x", "y"])
        c = sort_key_for({"x": 2, "y": 0}, ["x", "y"])
        assert a < b < c

    def test_bool_and_int_are_distinguishable(self):
        assert sort_key_for({"x": True}, ["x"]) != sort_key_for({"x": 1}, ["x"])


class TestRecordSize:
    def test_size_positive(self):
        assert record_size_bytes({"a": 1}) > 0

    def test_larger_strings_cost_more(self):
        small = record_size_bytes({"a": "x"})
        big = record_size_bytes({"a": "x" * 100})
        assert big > small

    def test_more_fields_cost_more(self):
        assert record_size_bytes({"a": 1, "b": 2}) > record_size_bytes({"a": 1})

    def test_empty_record_has_minimum_size(self):
        assert record_size_bytes({}) >= 1


class TestRecordsEqual:
    def test_order_insensitive(self):
        left = [{"a": 1}, {"a": 2}]
        right = [{"a": 2}, {"a": 1}]
        assert records_equal(left, right)

    def test_multiset_semantics(self):
        assert not records_equal([{"a": 1}, {"a": 1}], [{"a": 1}])

    def test_float_int_equivalence(self):
        assert records_equal([{"a": 1.0}], [{"a": 1}])

    def test_near_floats_are_rounded(self):
        assert records_equal([{"a": 0.1 + 0.2}], [{"a": 0.3}])

    def test_detects_differences(self):
        assert not records_equal([{"a": 1}], [{"a": 2}])

    def test_extra_field_breaks_equality(self):
        assert not records_equal([{"a": 1}], [{"a": 1, "b": 2}])


record_strategy = st.dictionaries(
    st.sampled_from(["a", "b", "c"]),
    st.one_of(st.integers(-1000, 1000), st.text(max_size=5)),
    max_size=3,
)


class TestRecordProperties:
    @given(st.lists(record_strategy, max_size=20))
    def test_records_equal_reflexive(self, records):
        assert records_equal(records, list(records))

    @given(st.lists(record_strategy, max_size=20))
    def test_records_equal_permutation_invariant(self, records):
        assert records_equal(records, list(reversed(records)))

    @given(record_strategy, st.lists(st.sampled_from(["a", "b", "c"]), max_size=3))
    def test_projection_is_subset(self, record, fields):
        projected = project(record, fields)
        assert set(projected).issubset(set(record))
        for key, value in projected.items():
            assert record[key] == value

    @given(st.lists(record_strategy, min_size=1, max_size=10))
    def test_sort_key_total_order(self, records):
        keys = [sort_key_for(r, ["a", "b"]) for r in records]
        assert sorted(keys) == sorted(keys, key=lambda k: k)
