"""Tests for the operator pipeline machinery and the local MapReduce engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dfs import DataLayout, Dataset, InMemoryFileSystem, PartitionScheme
from repro.mapreduce import (
    JobConfig,
    LocalEngine,
    MapReduceJob,
    PartitionFunction,
    Pipeline,
    map_operator,
    reduce_operator,
)
from repro.mapreduce.job import simple_job
from repro.mapreduce.pipeline import (
    OperatorStats,
    run_map_chain,
    run_reduce_chain,
)


def word_map(key, value):
    for word in str(value.get("text", "")).split():
        yield {"word": word}, {"n": 1.0}


def count_reduce(key, values):
    yield key, {"count": float(sum(v.get("n", 0) for v in values))}


def count_combine(key, values):
    yield key, {"n": float(sum(v.get("n", 0) for v in values))}


def _word_dataset(texts):
    return Dataset("docs", records=[{"text": t} for t in texts])


def _wordcount_job(config=None, combiner=None):
    return simple_job(
        name="wordcount",
        input_dataset="docs",
        output_dataset="counts",
        map_fn=word_map,
        reduce_fn=count_reduce,
        group_fields=("word",),
        combiner=combiner,
        config=config or JobConfig(num_reduce_tasks=3),
    )


class TestOperators:
    def test_reduce_operator_requires_group_fields(self):
        with pytest.raises(ValueError):
            reduce_operator("r", count_reduce, group_fields=[])

    def test_invalid_kind_rejected(self):
        from repro.mapreduce.pipeline import Operator

        with pytest.raises(ValueError):
            Operator(name="x", kind="shuffle", fn=word_map)

    def test_negative_cpu_cost_rejected(self):
        with pytest.raises(ValueError):
            map_operator("m", word_map, cpu_cost_per_record=-1)


class TestPipelineValidation:
    def test_requires_inputs_and_output(self):
        with pytest.raises(ValueError):
            Pipeline(tag="t", input_datasets=(), map_ops=[], output_dataset="o")
        with pytest.raises(ValueError):
            Pipeline(tag="t", input_datasets=("a",), map_ops=[], output_dataset="")

    def test_map_only_and_group_fields(self):
        pipeline = Pipeline(
            tag="t",
            input_datasets=("a",),
            map_ops=[map_operator("m", word_map)],
            reduce_ops=[reduce_operator("r", count_reduce, ("word",))],
            output_dataset="o",
        )
        assert not pipeline.is_map_only
        assert pipeline.shuffle_group_fields == ("word",)
        assert pipeline.reads("a") and not pipeline.reads("b")


class TestChains:
    def test_map_chain_counts_records(self):
        stats = OperatorStats()
        op = map_operator("m", word_map)
        out = list(run_map_chain([op], [({}, {"text": "a b a"})], stats))
        assert len(out) == 3
        assert stats.records_in["m"] == 1
        assert stats.records_out["m"] == 3

    def test_map_chain_merges_key_into_record(self):
        def project_map(key, value):
            yield {"k": value.get("k")}, {"v": value.get("v")}

        def downstream_map(key, value):
            # The downstream stage must see the upstream key field in its record.
            assert value.get("k") is not None
            yield key, {"seen": value["k"]}

        out = list(
            run_map_chain(
                [map_operator("a", project_map), map_operator("b", downstream_map)],
                [({}, {"k": 7, "v": 1})],
            )
        )
        assert out[0][1]["seen"] == 7

    def test_grouped_reduce_in_map_chain_groups_consecutive(self):
        op = reduce_operator("r", count_reduce, ("word",))
        pairs = [
            ({"word": "a"}, {"n": 1.0}),
            ({"word": "a"}, {"n": 1.0}),
            ({"word": "b"}, {"n": 1.0}),
        ]
        out = list(run_map_chain([op], pairs))
        assert ({"word": "a"}, {"count": 2.0}) == (out[0][0], out[0][1])
        assert out[1][1]["count"] == 1.0

    def test_reduce_chain_requires_reduce_first(self):
        from repro.common.errors import ExecutionError

        with pytest.raises(ExecutionError):
            list(run_reduce_chain([map_operator("m", word_map)], []))

    def test_reduce_chain_with_downstream_stage(self):
        def rescale_map(key, value):
            yield key, {"count": value["count"] * 10}

        chain = [
            reduce_operator("r", count_reduce, ("word",)),
            map_operator("m", rescale_map),
        ]
        groups = [({"word": "a"}, [{"n": 1.0}, {"n": 1.0}])]
        out = list(run_reduce_chain(chain, groups))
        assert out[0][1]["count"] == 20.0


class TestLocalEngineWordCount:
    def test_wordcount_counts_are_correct(self):
        fs = InMemoryFileSystem()
        fs.put(_word_dataset(["a b a", "b c", "a"]))
        result = LocalEngine().execute_job(_wordcount_job(), fs)
        counts = {r["word"]: r["count"] for r in fs.get("counts").all_records()}
        assert counts == {"a": 3.0, "b": 2.0, "c": 1.0}
        assert result.counters.map_input_records == 3
        assert result.counters.map_output_records == 6
        assert result.counters.reduce_input_groups == 3

    def test_wordcount_key_cardinalities_recorded(self):
        fs = InMemoryFileSystem()
        fs.put(_word_dataset(["a b a", "b c"]))
        result = LocalEngine().execute_job(_wordcount_job(), fs)
        assert result.counters.key_cardinalities[("word",)] == 3

    def test_combiner_reduces_shuffle(self):
        fs = InMemoryFileSystem()
        fs.put(_word_dataset(["a a a a b", "a a b b b"]))
        plain = LocalEngine().execute_job(_wordcount_job(), fs)
        with_combiner = LocalEngine().execute_job(
            _wordcount_job(
                config=JobConfig(num_reduce_tasks=3, combiner_enabled=True),
                combiner=count_combine,
            ),
            fs,
        )
        assert with_combiner.counters.spilled_records < plain.counters.spilled_records
        counts = {r["word"]: r["count"] for r in fs.get("counts").all_records()}
        assert counts == {"a": 6.0, "b": 4.0}

    def test_results_independent_of_reduce_task_count(self):
        fs = InMemoryFileSystem()
        fs.put(_word_dataset(["x y z x", "y z y"]))
        LocalEngine(max_exec_reduce_tasks=1).execute_job(_wordcount_job(), fs)
        single = {r["word"]: r["count"] for r in fs.get("counts").all_records()}
        LocalEngine(max_exec_reduce_tasks=7).execute_job(
            _wordcount_job(config=JobConfig(num_reduce_tasks=7)), fs
        )
        many = {r["word"]: r["count"] for r in fs.get("counts").all_records()}
        assert single == many


class TestLocalEngineShapes:
    def test_map_only_job(self):
        fs = InMemoryFileSystem()
        fs.put(Dataset("numbers", records=[{"x": float(i)} for i in range(10)]))

        def double_map(key, value):
            yield {}, {"x": value["x"] * 2}

        job = simple_job("doubler", "numbers", "doubled", double_map)
        result = LocalEngine().execute_job(job, fs)
        assert job.is_map_only
        assert result.counters.num_reduce_tasks == 0
        assert sorted(r["x"] for r in fs.get("doubled").all_records()) == [float(2 * i) for i in range(10)]

    def test_partition_pruning_skips_partitions(self):
        layout = DataLayout(partitioning=PartitionScheme.ranged("x", [5.0]))
        fs = InMemoryFileSystem()
        fs.put(Dataset("numbers", records=[{"x": float(i)} for i in range(10)], layout=layout))

        def identity_map(key, value):
            yield {}, dict(value)

        job = simple_job("reader", "numbers", "read", identity_map)
        job.pipelines[0].input_partition_filter["numbers"] = (0,)
        result = LocalEngine().execute_job(job, fs)
        assert result.counters.map_input_records == 5
        assert all(r["x"] < 5 for r in fs.get("read").all_records())

    def test_chained_input_uses_one_split_per_partition(self):
        layout = DataLayout(partitioning=PartitionScheme.ranged("x", [5.0]), sort_fields=("x",))
        fs = InMemoryFileSystem()
        fs.put(Dataset("numbers", records=[{"x": float(i)} for i in range(10)], layout=layout))

        def identity_map(key, value):
            yield {}, dict(value)

        job = simple_job(
            "chained",
            "numbers",
            "out",
            identity_map,
            config=JobConfig(num_reduce_tasks=0, max_parallel_maps_per_producer_reduce=1),
        )
        result = LocalEngine().execute_job(job, fs)
        assert result.counters.num_map_tasks == 2

    def test_tagged_multi_pipeline_job_shares_scan(self):
        fs = InMemoryFileSystem()
        fs.put(_word_dataset(["a b", "a c c"]))

        def letter_map(key, value):
            for word in str(value.get("text", "")).split():
                yield {"word": word}, {"n": 1.0}

        def length_map(key, value):
            yield {"len": float(len(str(value.get("text", ""))))}, {"n": 1.0}

        pipelines = [
            Pipeline(
                tag="counts",
                input_datasets=("docs",),
                map_ops=[map_operator("m1", letter_map)],
                reduce_ops=[reduce_operator("r1", count_reduce, ("word",))],
                output_dataset="word_counts",
            ),
            Pipeline(
                tag="lengths",
                input_datasets=("docs",),
                map_ops=[map_operator("m2", length_map)],
                reduce_ops=[reduce_operator("r2", count_reduce, ("len",))],
                output_dataset="length_counts",
            ),
        ]
        job = MapReduceJob(name="packed", pipelines=pipelines, config=JobConfig(num_reduce_tasks=2))
        result = LocalEngine().execute_job(job, fs)
        # Scan sharing: the two-pipeline job reads each input record once.
        assert result.counters.map_input_records == 2
        word_counts = {r["word"]: r["count"] for r in fs.get("word_counts").all_records()}
        assert word_counts == {"a": 2.0, "b": 1.0, "c": 2.0}
        assert fs.get("length_counts").num_records == 2

    def test_forced_single_reduce_sees_all_records(self):
        fs = InMemoryFileSystem()
        fs.put(Dataset("numbers", records=[{"g": 0.0, "x": float(i)} for i in range(20)]))

        def key_map(key, value):
            yield {"g": 0.0}, {"x": value["x"]}

        def top_reduce(key, values):
            best = max(v["x"] for v in values)
            yield key, {"best": best}

        job = simple_job(
            "top",
            "numbers",
            "best",
            key_map,
            top_reduce,
            group_fields=("g",),
            config=JobConfig(num_reduce_tasks=1, forced_single_reduce=True),
        )
        LocalEngine().execute_job(job, fs)
        assert fs.get("best").all_records() == [{"g": 0.0, "best": 19.0}]

    def test_output_layout_reflects_partitioner(self):
        fs = InMemoryFileSystem()
        fs.put(_word_dataset(["a b", "c"]))
        job = _wordcount_job()
        job = job.with_partitioner(PartitionFunction.ranged("word", [1.0], sort_fields=["word"]))
        LocalEngine().execute_job(job, fs)
        layout = fs.get("counts").layout
        assert layout.partitioning.kind == "range"
        assert layout.sort_fields == ("word",)


class TestEngineGroupByProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 100)),
            min_size=1,
            max_size=60,
        )
    )
    def test_group_sum_matches_python(self, pairs):
        records = [{"k": float(k), "v": float(v)} for k, v in pairs]
        fs = InMemoryFileSystem()
        fs.put(Dataset("data", records=records))

        def key_map(key, value):
            yield {"k": value["k"]}, {"v": value["v"]}

        def sum_reduce(key, values):
            yield key, {"total": float(sum(v["v"] for v in values))}

        job = simple_job(
            "sums", "data", "sums_out", key_map, sum_reduce, group_fields=("k",),
            config=JobConfig(num_reduce_tasks=4),
        )
        LocalEngine().execute_job(job, fs)
        got = {r["k"]: r["total"] for r in fs.get("sums_out").all_records()}
        expected = {}
        for k, v in pairs:
            expected[float(k)] = expected.get(float(k), 0.0) + float(v)
        assert got == expected
