"""Tests for optimization units, the search strategy, and the Stubby optimizer."""

import pytest

from repro.cluster import ClusterSpec
from repro.common.records import records_equal
from repro.core.optimization_unit import OptimizationUnit, OptimizationUnitGenerator
from repro.core.optimizer import StubbyOptimizer
from repro.core.plan import Plan
from repro.core.search import StubbySearch
from repro.core.transformations import (
    HorizontalPacking,
    InterJobVerticalPacking,
    IntraJobVerticalPacking,
    PartitionFunctionTransformation,
)
from repro.profiler import Profiler
from repro.whatif import ActualCostModel
from repro.workflow.executor import WorkflowExecutor
from repro.workloads import build_workload

CLUSTER = ClusterSpec.paper_cluster()


def _profiled(abbr, scale=0.15):
    workload = build_workload(abbr, scale=scale)
    Profiler().profile_workflow(workload.workflow, workload.base_datasets)
    return workload


class TestOptimizationUnits:
    def test_units_cover_graph_in_order(self):
        workload = _profiled("BR")
        generator = OptimizationUnitGenerator()
        units = list(generator.iterate(workload.plan))
        assert units[0].producers == ("BR_J1",)
        assert set(units[0].consumers) == {"BR_J2", "BR_J3"}
        assert set(units[1].producers) == {"BR_J2", "BR_J3"}
        # Every job eventually serves as a producer.
        produced = {name for unit in units for name in unit.producers}
        assert produced == set(workload.workflow.job_names)

    def test_unit_jobs_deduplicated(self):
        unit = OptimizationUnit(producers=("A", "B"), consumers=("B", "C"))
        assert unit.jobs == ("A", "B", "C")

    def test_next_unit_none_when_done(self):
        workload = _profiled("IR")
        generator = OptimizationUnitGenerator()
        plan = workload.plan
        while True:
            unit = generator.next_unit(plan)
            if unit is None:
                break
            generator.mark_handled(plan, unit)
        assert generator.next_unit(plan) is None


class TestStubbySearch:
    def _search(self):
        return StubbySearch(
            cluster=CLUSTER,
            vertical_transformations=[
                IntraJobVerticalPacking(),
                InterJobVerticalPacking(),
                PartitionFunctionTransformation(),
            ],
            horizontal_transformations=[HorizontalPacking(), PartitionFunctionTransformation()],
        )

    def test_enumeration_includes_untransformed_plan(self):
        workload = _profiled("IR")
        plan = workload.plan
        search = self._search()
        unit = OptimizationUnitGenerator().next_unit(plan)
        subplans = search.enumerate_subplans(plan, unit, search.vertical_transformations)
        assert subplans[0].transformations == ()
        assert len(subplans) >= 3

    def test_enumeration_deduplicates_by_signature(self):
        workload = _profiled("IR")
        plan = workload.plan
        search = self._search()
        unit = OptimizationUnitGenerator().next_unit(plan)
        subplans = search.enumerate_subplans(plan, unit, search.vertical_transformations)
        signatures = [record.plan.signature() for record in subplans]
        assert len(signatures) == len(set(signatures))

    def test_optimize_unit_picks_lowest_estimated_cost(self):
        workload = _profiled("IR")
        plan = workload.plan
        search = self._search()
        unit = OptimizationUnitGenerator().next_unit(plan)
        _, report = search.optimize_unit(plan, unit, search.vertical_transformations)
        costs = [record.estimated_cost for record in report.subplans]
        assert report.chosen_index == costs.index(min(costs))

    def test_chosen_configurations_are_applied(self):
        workload = _profiled("IR")
        plan = workload.plan
        search = self._search()
        unit = OptimizationUnitGenerator().next_unit(plan)
        optimized, report = search.optimize_unit(plan, unit, search.vertical_transformations)
        chosen = report.chosen
        for job_name, settings in chosen.best_settings.items():
            if not optimized.workflow.has_job(job_name):
                continue
            config = optimized.job(job_name).job.config
            if "num_reduce_tasks" in settings and not config.is_map_only and not config.forced_single_reduce:
                assert config.num_reduce_tasks == settings["num_reduce_tasks"]


class TestStubbyOptimizer:
    def test_variant_names(self):
        assert StubbyOptimizer(CLUSTER).variant_name == "Stubby"
        assert StubbyOptimizer.vertical_only(CLUSTER).variant_name == "Vertical"
        assert StubbyOptimizer.horizontal_only(CLUSTER).variant_name == "Horizontal"

    def test_rejects_unknown_phase_lazily(self):
        # Construction accepts any phases; validation happens when optimize()
        # actually uses them, so per-call overrides share the same error path.
        optimizer = StubbyOptimizer(CLUSTER, phases=("diagonal",))
        with pytest.raises(ValueError, match="unknown phase 'diagonal'"):
            optimizer.optimize(_profiled("IR").plan)

    def test_rejects_unknown_phase_override(self):
        optimizer = StubbyOptimizer(CLUSTER)
        with pytest.raises(ValueError, match="unknown phase 'sideways'"):
            optimizer.optimize(_profiled("IR").plan, phases=("vertical", "sideways"))

    def test_phase_override_restricts_one_call(self):
        workload = _profiled("IR")
        optimizer = StubbyOptimizer(CLUSTER)
        result = optimizer.optimize(workload.plan, phases=("vertical",))
        assert "horizontal-packing" not in result.transformations_applied
        assert optimizer.phases == ("vertical", "horizontal")  # config untouched
        # The result is labeled by the phases that actually ran.
        assert result.optimizer == "Vertical"
        assert optimizer.variant_name == "Stubby"

    def test_as_plan_accepts_plan_and_workflow(self):
        workload = _profiled("IR")
        as_is = StubbyOptimizer._as_plan(workload.plan)
        assert isinstance(as_is, Plan)
        wrapped = StubbyOptimizer._as_plan(workload.workflow)
        assert isinstance(wrapped, Plan) and wrapped.workflow is workload.workflow

    def test_as_plan_rejects_other_types(self):
        for bogus in (None, 42, "workflow", ["jobs"], {"plan": True}):
            with pytest.raises(TypeError, match="expects a Plan or a Workflow"):
                StubbyOptimizer._as_plan(bogus)

    def test_optimizes_ir_and_reduces_cost(self):
        workload = _profiled("IR")
        plan = workload.plan
        initial_cost = StubbyOptimizer(CLUSTER).whatif.estimate_workflow(plan.workflow).total_s
        result = StubbyOptimizer(CLUSTER).optimize(plan)
        assert result.estimated_cost_s < initial_cost
        assert result.num_jobs <= workload.num_jobs
        assert "intra-job-vertical-packing" in result.transformations_applied

    def test_optimized_plan_is_equivalent(self):
        workload = _profiled("IR")
        result = StubbyOptimizer(CLUSTER).optimize(workload.plan)
        executor = WorkflowExecutor()
        _, original_fs = executor.execute(workload.workflow.copy(), base_datasets=workload.base_datasets)
        _, optimized_fs = executor.execute(result.plan.workflow, base_datasets=workload.base_datasets)
        assert records_equal(
            original_fs.get("ir_tfidf").all_records(),
            optimized_fs.get("ir_tfidf").all_records(),
        )

    def test_without_annotations_stubby_is_safe(self):
        """With zero annotations Stubby still returns a correct (unchanged) plan."""
        workload = build_workload("IR", scale=0.15)
        for vertex in workload.workflow.jobs:
            vertex.annotations.schema = None
            vertex.annotations.profile = None
        result = StubbyOptimizer(CLUSTER).optimize(workload.plan)
        assert result.num_jobs == workload.num_jobs
        assert "intra-job-vertical-packing" not in result.transformations_applied

    def test_vertical_variant_does_not_horizontally_pack(self):
        workload = _profiled("PJ")
        result = StubbyOptimizer.vertical_only(CLUSTER).optimize(workload.plan)
        assert "horizontal-packing" not in result.transformations_applied

    def test_accepts_raw_workflow(self):
        workload = _profiled("IR")
        result = StubbyOptimizer(CLUSTER).optimize(workload.workflow)
        assert isinstance(result.plan, Plan)

    def test_rejects_other_inputs(self):
        with pytest.raises(TypeError):
            StubbyOptimizer(CLUSTER).optimize(42)

    def test_stubby_beats_unoptimized_on_actual_cost(self):
        workload = _profiled("US")
        executor = WorkflowExecutor()
        execution, fs = executor.execute(workload.workflow.copy(), base_datasets=workload.base_datasets)
        unoptimized = ActualCostModel(CLUSTER).workflow_cost(workload.workflow, execution, fs).total_s
        result = StubbyOptimizer(CLUSTER).optimize(workload.plan)
        execution2, fs2 = executor.execute(result.plan.workflow, base_datasets=workload.base_datasets)
        optimized = ActualCostModel(CLUSTER).workflow_cost(result.plan.workflow, execution2, fs2).total_s
        assert optimized < unoptimized
