"""Parallel unit search: backend identity, stats attribution, plumbing.

The contract under test is the one ``docs/search.md`` documents: an
execution backend changes *where* candidate costings and RRS sample
generations run, never what they compute.  The property test sweeps random
workflows across {serial, thread, process} × {1, 2, 4} workers and asserts
byte-for-byte identical optimizer decisions — same chosen subplans, same
best settings, same candidate costs — plus the stats invariants that make
the merged :class:`~repro.whatif.service.CostServiceStats` trustworthy
under any placement.
"""

import os

import pytest

from repro.cluster import ClusterSpec
from repro.core.optimization_unit import OptimizationUnitGenerator
from repro.core.optimizer import StubbyOptimizer
from repro.core.parallel import (
    DEFAULT_WORKERS,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    create_backend,
    resolve_backend,
)
from repro.core.rrs import RecursiveRandomSearch
from repro.mapreduce.config import ConfigDimension, ConfigurationSpace
from repro.profiler import Profiler
from repro.verification import RandomWorkflowGenerator
from repro.whatif.service import CostServiceStats
from repro.workloads import build_workload

CLUSTER = ClusterSpec.paper_cluster()

#: The backend sweep of the identity property test.
BACKEND_SPECS = (
    "serial",
    "thread:1",
    "thread:2",
    "thread:4",
    "process:1",
    "process:2",
    "process:4",
)


def _decision_fingerprint(result):
    """Everything the optimizer decided, as comparable plain data."""
    per_unit = []
    for report in result.unit_reports:
        chosen = report.chosen
        per_unit.append(
            (
                report.unit.producers,
                report.phase,
                report.chosen_index,
                tuple(record.estimated_cost for record in report.subplans),
                tuple(record.transformations for record in report.subplans),
                tuple(
                    sorted(
                        (job, tuple(sorted(settings.items())))
                        for job, settings in (chosen.best_settings if chosen else {}).items()
                    )
                ),
            )
        )
    return (
        result.plan.signature(),
        result.estimated_cost_s,
        tuple(per_unit),
    )


def _optimize(plan_source, backend):
    optimizer = StubbyOptimizer(CLUSTER, seed=17, backend=backend)
    return optimizer.optimize(plan_source)


class TestParallelSerialIdentity:
    """parallel == serial, bit for bit, for every backend and worker count."""

    @pytest.mark.parametrize("seed", [2001, 2002, 2003, 2004])
    def test_random_workflows_identical_across_backends(self, seed, workflow_generator):
        generated = workflow_generator.generate(seed)
        reference = _optimize(generated.plan, "serial")
        reference_fp = _decision_fingerprint(reference)
        for spec in BACKEND_SPECS[1:]:
            result = _optimize(generated.plan, spec)
            assert _decision_fingerprint(result) == reference_fp, (
                f"seed {seed}: backend {spec} diverged from serial"
            )

    @pytest.mark.parametrize("abbr", ["IR", "PJ"])
    def test_canned_workloads_identical_across_backends(self, abbr):
        workload = build_workload(abbr, scale=0.12)
        Profiler().profile_workflow(workload.workflow, workload.base_datasets)
        reference = _optimize(workload.plan, "serial")
        reference_fp = _decision_fingerprint(reference)
        for spec in ("thread:4", "process:4"):
            result = _optimize(workload.plan, spec)
            assert _decision_fingerprint(result) == reference_fp, (
                f"{abbr}: backend {spec} diverged from serial"
            )

    def test_query_totals_identical_across_backends(self, workflow_generator):
        # Caching placement may shift *where* hits happen, but every
        # workflow-level query is issued (and counted) exactly once no
        # matter which worker runs it.
        generated = workflow_generator.generate(2042)
        reference = _optimize(generated.plan, "serial")
        for spec in ("thread:2", "process:4"):
            result = _optimize(generated.plan, spec)
            assert result.cost_stats.queries == reference.cost_stats.queries, spec
            assert result.cost_stats.job_queries == reference.cost_stats.job_queries, spec


class TestStatsAttribution:
    """Per-candidate stat deltas are explicit, exact, and merge cleanly."""

    @pytest.mark.parametrize("spec", ["serial", "thread:4", "process:4"])
    def test_merged_stats_invariants(self, spec, workflow_generator):
        generated = workflow_generator.generate(2077)
        result = _optimize(generated.plan, spec)
        stats = result.cost_stats
        # Job lookups are served exactly one of three ways.
        assert (
            stats.job_cache_hits + stats.job_dataflow_hits + stats.job_full_recosts
            == stats.job_queries
        )
        assert 0.0 <= stats.cache_hit_rate <= 1.0
        assert 0.0 <= stats.reuse_rate <= 1.0
        assert stats.full_estimates <= stats.queries
        # Every query of the run is one candidate's costing work, a split
        # unit's composed-combination scoring, or the optimizer's single
        # final accounting estimate — the explicit deltas add up exactly.
        candidate_queries = sum(
            record.cost_stats.queries
            for report in result.unit_reports
            for record in report.subplans
        )
        composition_queries = sum(
            report.composition_queries for report in result.unit_reports
        )
        assert candidate_queries + composition_queries + 1 == stats.queries

    @pytest.mark.parametrize("spec", ["serial", "thread:4", "process:4"])
    def test_unit_report_attribution_is_per_candidate(self, spec):
        workload = build_workload("IR", scale=0.12)
        Profiler().profile_workflow(workload.workflow, workload.base_datasets)
        result = _optimize(workload.plan, spec)
        for report in result.unit_reports:
            for record in report.subplans:
                # Every candidate issues at least its baseline estimate.
                assert record.cost_stats.queries >= 1
                assert (
                    record.cost_stats.job_cache_hits
                    + record.cost_stats.job_dataflow_hits
                    + record.cost_stats.job_full_recosts
                    == record.cost_stats.job_queries
                )
            assert report.cost_queries == sum(r.cost_stats.queries for r in report.subplans)
            assert report.job_cache_hits == sum(
                r.cost_stats.job_cache_hits for r in report.subplans
            )
            assert report.jobs_recosted == sum(
                r.cost_stats.job_cache_misses for r in report.subplans
            )


class TestOptimizeLeavesInputUntouched:
    """optimize() must never mutate the caller's plan (regression test).

    A split unit whose chosen candidate had an empty application chain once
    applied its configuration settings onto the *input* plan in place,
    corrupting unoptimized-vs-optimized comparisons and the bisection
    snapshots.  Sweep enough random workflows to hit split units.
    """

    @pytest.mark.parametrize("spec", ["serial", "process:2"])
    def test_input_plan_unchanged(self, spec, workflow_generator):
        for seed in (10, 14, 55, 2001):
            generated = workflow_generator.generate(seed)
            plan = generated.plan
            history_before = len(plan.history)
            signature_before = plan.signature()
            configs_before = {
                name: plan.workflow.job(name).job.config.as_dict()
                for name in plan.workflow.job_names
            }
            result = _optimize(plan, spec)
            assert len(plan.history) == history_before, f"seed {seed}"
            assert plan.signature() == signature_before, f"seed {seed}"
            for name in plan.workflow.job_names:
                assert plan.workflow.job(name).job.config.as_dict() == configs_before[name], (
                    f"seed {seed}: config of {name} mutated in the input plan"
                )
            # plan_before snapshots must not have been written through either.
            first = result.unit_reports[0]
            assert first.plan_before.signature() == signature_before


class TestComposedChoiceQuality:
    """Splitting a unit must not produce worse plans than whole-unit search.

    Workflow cost is a per-level makespan, so per-sub-unit greedy argmin can
    discard a rewrite that only pays off jointly; the composed cross-product
    scoring exists to close exactly that gap (regression: seed 55 once came
    out 83% worse than the unsplit search).
    """

    @pytest.mark.parametrize("seed", [10, 55])
    def test_split_no_worse_than_unsplit(self, seed, workflow_generator, monkeypatch):
        generated = workflow_generator.generate(seed)
        split = _optimize(generated.plan, "serial")
        monkeypatch.setattr(
            OptimizationUnitGenerator,
            "independent_subunits",
            lambda self, plan, unit: [unit],
        )
        unsplit = _optimize(generated.plan, "serial")
        assert split.estimated_cost_s <= unsplit.estimated_cost_s * 1.001, (
            f"seed {seed}: split search ({split.estimated_cost_s:.1f}s) worse than "
            f"whole-unit search ({unsplit.estimated_cost_s:.1f}s)"
        )


class TestIndependentSubunits:
    """The dependency analysis behind unit-level fan-out."""

    def test_disjoint_components_split(self):
        # PJ's first unit has several source jobs; whether they split depends
        # on shared inputs, so build the ground truth from the graph itself.
        workload = build_workload("PJ", scale=0.1)
        generator = OptimizationUnitGenerator()
        unit = generator.next_unit(workload.plan)
        subunits = generator.independent_subunits(workload.plan, unit)
        # Partition: every unit job appears in exactly one sub-unit.
        seen = [name for sub in subunits for name in sub.jobs]
        assert sorted(seen) == sorted(set(seen))
        assert set(seen) == set(unit.jobs)
        # No two sub-units touch a common dataset.
        workflow = workload.plan.workflow
        touched = []
        for sub in subunits:
            datasets = set()
            for name in sub.jobs:
                job = workflow.job(name).job
                datasets.update(job.input_datasets)
                datasets.update(job.output_datasets)
            touched.append(datasets)
        for i in range(len(touched)):
            for j in range(i + 1, len(touched)):
                assert not (touched[i] & touched[j]), (subunits[i], subunits[j])

    def test_producers_ordered_and_covering(self, workflow_generator):
        for seed in (2101, 2102, 2103):
            generated = workflow_generator.generate(seed)
            generator = OptimizationUnitGenerator()
            unit = generator.next_unit(generated.plan)
            subunits = generator.independent_subunits(generated.plan, unit)
            assert sorted(n for s in subunits for n in s.producers) == sorted(unit.producers)
            # Deterministic order: sorted by first appearance in the unit.
            order = {name: i for i, name in enumerate(unit.jobs)}
            firsts = [min(order[n] for n in sub.jobs) for sub in subunits]
            assert firsts == sorted(firsts)


class TestBackendPlumbing:
    def test_available_and_create(self):
        assert set(available_backends()) == {"serial", "thread", "process"}
        assert isinstance(create_backend("serial"), SerialBackend)
        assert isinstance(create_backend("thread:3"), ThreadBackend)
        backend = create_backend("process:2")
        assert isinstance(backend, ProcessBackend)
        assert backend.workers == 2
        assert backend.spec == "process:2"
        assert create_backend("thread").workers == DEFAULT_WORKERS

    def test_create_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown search backend"):
            create_backend("quantum:9")
        with pytest.raises(ValueError, match="bad worker count"):
            create_backend("thread:lots")
        with pytest.raises(ValueError):
            ThreadBackend(workers=0)

    def test_resolve_backend_env_and_passthrough(self, monkeypatch):
        backend = ThreadBackend(workers=2)
        assert resolve_backend(backend) is backend
        monkeypatch.delenv("STUBBY_SEARCH_BACKEND", raising=False)
        assert isinstance(resolve_backend(None), SerialBackend)
        monkeypatch.setenv("STUBBY_SEARCH_BACKEND", "thread:2")
        resolved = resolve_backend(None)
        assert isinstance(resolved, ThreadBackend)
        assert resolved.workers == 2
        with pytest.raises(TypeError):
            resolve_backend(42)

    @pytest.mark.parametrize("spec", ["thread:2", "process:2"])
    def test_session_preserves_request_order(self, spec):
        backend = create_backend(spec)
        with backend.session(lambda request: request * request) as session:
            assert session.run(list(range(23))) == [i * i for i in range(23)]

    def test_process_worker_errors_propagate(self):
        backend = ProcessBackend(workers=2)

        def explode(request):
            if request == 3:
                raise RuntimeError("candidate 3 is cursed")
            return request

        with pytest.raises(RuntimeError, match="parallel search worker failed"):
            with backend.session(explode) as session:
                session.run(list(range(6)))

    def test_search_backend_reported_on_result(self):
        workload = build_workload("PJ", scale=0.1)
        Profiler().profile_workflow(workload.workflow, workload.base_datasets)
        result = _optimize(workload.plan, "process:2")
        assert result.search_backend == "process:2"
        assert _optimize(workload.plan, None).search_backend == "serial:1"


class TestBatchedRRS:
    def _space(self):
        return ConfigurationSpace(
            dimensions=[
                ConfigDimension(name="x", kind="int", low=1, high=64),
                ConfigDimension(name="y", kind="int", low=0, high=100),
            ]
        )

    def test_batch_equals_pointwise(self):
        def objective(point):
            return (point["x"] - 17) ** 2 + (point["y"] - 50) ** 2

        def batch(points):
            return [objective(p) for p in points]

        a = RecursiveRandomSearch(seed=5).search(self._space(), objective)
        b = RecursiveRandomSearch(seed=5).search(self._space(), objective_batch=batch)
        assert a.best_point == b.best_point
        assert a.best_value == b.best_value
        assert a.trajectory == b.trajectory

    def test_requires_some_objective(self):
        with pytest.raises(ValueError, match="objective"):
            RecursiveRandomSearch().search(self._space())

    def test_batch_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="values for"):
            RecursiveRandomSearch(seed=1).search(
                self._space(), objective_batch=lambda points: [1.0]
            )


# ---------------------------------------------------------------------------
# Equivalence battery hook: the process backend must stay semantics-preserving
# ---------------------------------------------------------------------------


@pytest.mark.equivalence
@pytest.mark.parametrize("spec", ["thread:4", "process:4"])
def test_equivalence_process_backend(spec, cluster, workflow_generator, differential):
    """Optimized output equivalence holds when the search runs in parallel."""
    seeds = [1000, 1001, 1002]
    if os.environ.get("EQUIVALENCE_SEEDS"):
        seeds = seeds + [1003, 1004, 1005]
    for seed in seeds:
        generated = workflow_generator.generate(seed)
        result = StubbyOptimizer(cluster, backend=spec).optimize(generated.plan)
        report = differential.verify_result(
            generated.workflow, generated.base_datasets, result
        )
        assert report.equivalent, f"[seed={seed}, {spec}]\n{report.describe()}"
