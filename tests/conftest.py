"""Shared pytest configuration for the test suite.

Registers a conservative Hypothesis profile (property-based tests in this
suite exercise whole MapReduce executions, which are far slower than the
microsecond-scale functions Hypothesis' default health checks expect) and the
fixture layer of the differential-equivalence battery: the shared cluster
spec, the differential executor, and the seeded random-workflow list whose
size is controlled by the ``EQUIVALENCE_SEEDS`` environment variable.
"""

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.cluster import ClusterSpec
from repro.verification import DifferentialExecutor, RandomWorkflowGenerator

settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")

#: Base seed of the random-workflow sweep; change it to explore a fresh
#: region of the workflow space (failures always print the exact seed).
EQUIVALENCE_BASE_SEED = 1000


def equivalence_seeds():
    """Seeds for the random-workflow equivalence sweep (>= 25 by contract).

    ``EQUIVALENCE_SEEDS`` scales the sweep up for nightly runs; the default
    keeps the tier-1 suite quick while satisfying the battery's minimum.
    """
    raw = os.environ.get("EQUIVALENCE_SEEDS", "").strip()
    try:
        count = int(raw) if raw else 25
    except ValueError:
        count = 25  # a malformed value must not abort collection of the suite
    return [EQUIVALENCE_BASE_SEED + i for i in range(max(25, count))]


@pytest.fixture(scope="session", autouse=True)
def env_fault_plan():
    """Install the ``STUBBY_FAULT_PLAN`` fault plan (if set) for the session.

    This is how the nightly chaos sweep runs the whole suite under injected
    faults: the env variable carries a JSON spec list, and every
    ``fault_site`` hook in the library sees the installed plan.  Unset (the
    normal case) this is a no-op.
    """
    from repro.common.faults import set_active_plan
    from repro.verification.faults import install_from_env

    plan = install_from_env()
    yield plan
    set_active_plan(None)


@pytest.fixture(scope="session")
def cluster():
    """The paper's evaluation cluster, shared across the equivalence battery."""
    return ClusterSpec.paper_cluster()


@pytest.fixture(scope="session")
def workflow_generator():
    """A default-config random workflow generator."""
    return RandomWorkflowGenerator()


@pytest.fixture()
def differential():
    """A fresh differential executor (float-tolerant output comparison)."""
    return DifferentialExecutor()
