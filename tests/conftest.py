"""Shared pytest configuration for the test suite.

Registers a conservative Hypothesis profile: property-based tests in this
suite exercise whole MapReduce executions, which are far slower than the
microsecond-scale functions Hypothesis' default health checks expect.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")
