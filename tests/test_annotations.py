"""Tests for dataset, schema, filter, and profile annotations."""

import pytest

from repro.common.errors import AnnotationError
from repro.workflow.annotations import (
    DatasetAnnotation,
    FilterAnnotation,
    FilterRange,
    JobAnnotations,
    OperatorProfile,
    ProfileAnnotation,
    SchemaAnnotation,
)


class TestDatasetAnnotation:
    def test_partitioned_on_subset(self):
        annotation = DatasetAnnotation(partition_kind="hash", partition_fields=("doc",))
        assert annotation.partitioned_on_subset_of(["doc", "word"])
        assert not annotation.partitioned_on_subset_of(["word"])

    def test_unpartitioned_never_matches(self):
        assert not DatasetAnnotation().partitioned_on_subset_of(["doc"])

    def test_sorted_to_group_on(self):
        annotation = DatasetAnnotation(sort_fields=("doc", "word"))
        assert annotation.sorted_to_group_on(["doc"])
        assert annotation.sorted_to_group_on(["doc", "word"])
        assert not annotation.sorted_to_group_on(["word", "other"])

    def test_unknown_sort_means_not_grouped(self):
        assert not DatasetAnnotation().sorted_to_group_on(["doc"])
        assert DatasetAnnotation().sorted_to_group_on([])

    def test_invalid_partition_kind(self):
        with pytest.raises(AnnotationError):
            DatasetAnnotation(partition_kind="zigzag")

    def test_with_size(self):
        annotation = DatasetAnnotation().with_size(100.0, 10.0)
        assert annotation.size_bytes == 100.0 and annotation.num_records == 10.0


class TestSchemaAnnotation:
    def test_of_builds_fieldsets(self):
        schema = SchemaAnnotation.of(k2=["a", "b"], k3=["a"])
        assert schema.k2 == frozenset({"a", "b"})
        assert schema.k1 is None

    def test_key_flows_through_reduce(self):
        schema = SchemaAnnotation.of(k2=["o", "z"], k3=["o", "z"])
        assert schema.key_flows_through_reduce(["o"])
        assert not SchemaAnnotation.of(k2=["o"], k3=["x"]).key_flows_through_reduce(["o"])
        assert not SchemaAnnotation.of(k2=["o"]).key_flows_through_reduce(["o"])

    def test_map_emits_fields_from_input(self):
        schema = SchemaAnnotation.of(k1=["o"], v1=["o", "z"], k2=["o"])
        assert schema.map_emits_fields_from_input(["o"])
        schema2 = SchemaAnnotation.of(k1=["x"], v1=["x"], k2=["o"])
        assert not schema2.map_emits_fields_from_input(["o"])

    def test_map_emits_with_unknown_input_schema(self):
        schema = SchemaAnnotation.of(k2=["o"])
        assert schema.map_emits_fields_from_input(["o"])
        assert not schema.map_emits_fields_from_input(["q"])


class TestFilterAnnotation:
    def test_range_contains(self):
        fr = FilterRange(0.0, 100.0)
        assert fr.contains(0.0) and fr.contains(99.9) and not fr.contains(100.0)

    def test_empty_range_rejected(self):
        with pytest.raises(AnnotationError):
            FilterRange(5.0, 5.0)

    def test_fraction_of_domain(self):
        fr = FilterRange(0.0, 50.0)
        assert fr.fraction_of(0.0, 100.0) == pytest.approx(0.5)
        assert fr.fraction_of(60.0, 100.0) == 0.0

    def test_of_constructor_and_lookup(self):
        annotation = FilterAnnotation.of(age=(10.0, 35.0))
        assert annotation.fields == ("age",)
        assert annotation.range_for("age").high == 35.0
        assert annotation.range_for("other") is None
        assert not annotation.is_empty()


class TestProfileAnnotation:
    def test_negative_statistics_rejected(self):
        with pytest.raises(AnnotationError):
            ProfileAnnotation(map_selectivity=-1.0)
        with pytest.raises(AnnotationError):
            OperatorProfile(selectivity=-0.1)

    def test_cardinality_exact_superset_subset(self):
        profile = ProfileAnnotation(key_cardinalities={("a", "b"): 100.0, ("a",): 10.0})
        assert profile.cardinality(("a", "b")) == 100.0
        assert profile.cardinality(("a",)) == 10.0
        # superset fallback
        assert profile.cardinality(("b",)) == 100.0
        # unknown fields fall back to default
        assert ProfileAnnotation().cardinality(("zz",), default=7.0) == 7.0

    def test_merged_with_unions_operators(self):
        left = ProfileAnnotation(operator_profiles={"m1": OperatorProfile(selectivity=2.0)})
        right = ProfileAnnotation(
            operator_profiles={"m2": OperatorProfile(selectivity=0.5)},
            key_cardinalities={("k",): 5.0},
        )
        merged = left.merged_with(right)
        assert set(merged.operator_profiles) == {"m1", "m2"}
        assert merged.cardinality(("k",)) == 5.0

    def test_scaled_scales_cardinalities(self):
        profile = ProfileAnnotation(key_cardinalities={("k",): 10.0})
        assert profile.scaled(3.0).cardinality(("k",)) == 30.0


class TestJobAnnotations:
    def test_copy_is_independent(self):
        annotations = JobAnnotations(filter=FilterAnnotation.of(x=(0, 1)))
        annotations.conditions["flag"] = 1
        copy = annotations.copy()
        copy.conditions["flag"] = 2
        assert annotations.conditions["flag"] == 1

    def test_filter_for_prefers_per_input(self):
        annotations = JobAnnotations(
            filter=FilterAnnotation.of(x=(0, 1)),
            per_input_filters={"d": FilterAnnotation.of(y=(2, 3))},
        )
        assert annotations.filter_for("d").fields == ("y",)
        assert annotations.filter_for("other").fields == ("x",)
        assert annotations.filter_for().fields == ("x",)

    def test_has_flags(self):
        assert not JobAnnotations().has_schema
        assert JobAnnotations(schema=SchemaAnnotation.of(k2=["a"])).has_schema
        assert not JobAnnotations().has_profile
