"""Tests for the incremental, memoized cost-estimation service.

The contract under test (see ``docs/costing.md``):

* **Exactness** — a memoized/incremental estimate is *bit-identical* to a
  cold full re-estimation by a fresh engine, across random generator
  workflows, config perturbations (the RRS access pattern), and structural
  transformations (the enumeration access pattern).
* **Stats invariants** — every job lookup is classified exactly once
  (estimate hit, dataflow hit, or full recost), and the counters add up.
* **Decision invariance** — the optimizer picks identical plans and costs
  with the cache enabled and disabled, on every canned workload.
* **Savings** — per ``optimize()`` the service performs at least 5x fewer
  full-workflow what-if computations than the pre-refactor engine, which
  computed every query cold (one full computation per query).
"""

import pytest

from repro.cluster import ClusterSpec
from repro.common.rng import DeterministicRNG
from repro.core.optimizer import StubbyOptimizer
from repro.core.search import record_unit_jobs, SubplanRecord
from repro.core.optimization_unit import OptimizationUnit
from repro.core.plan import Plan
from repro.core.transformations import (
    HorizontalPacking,
    InterJobVerticalPacking,
    IntraJobVerticalPacking,
)
from repro.profiler import Profiler
from repro.verification import RandomWorkflowGenerator
from repro.whatif import CostService, WhatIfEngine
from repro.workloads import WORKLOAD_ORDER, build_workload

CLUSTER = ClusterSpec.paper_cluster()

#: Seeds for the exactness sweep (>= 25 by the issue's contract).
PROPERTY_SEEDS = list(range(7000, 7025))


def _profiled(abbr, scale=0.12):
    workload = build_workload(abbr, scale=scale)
    Profiler().profile_workflow(workload.workflow, workload.base_datasets)
    return workload


def _assert_estimates_identical(incremental, cold, context=""):
    assert incremental.cost_basis == cold.cost_basis, context
    assert incremental.total_s == cold.total_s, context
    assert set(incremental.per_job) == set(cold.per_job), context
    for name, estimate in cold.per_job.items():
        assert incremental.per_job[name].total_s == estimate.total_s, f"{context} job={name}"
    assert incremental.dataset_sizes == cold.dataset_sizes, context


def _random_config_perturbation(plan, rng):
    """Mutate one job's configuration the way an RRS sample would."""
    name = rng.choice(plan.job_names)
    config = plan.job(name).job.config
    settings = {
        "num_reduce_tasks": rng.randint(1, 12),
        "split_size_mb": rng.randint(32, 256),
        "io_sort_mb": rng.randint(64, 512),
        "combiner_enabled": rng.random() < 0.5,
        "compress_map_output": rng.random() < 0.5,
        "compress_output": rng.random() < 0.5,
    }
    plan.set_job_config(name, config.with_settings(settings))


class TestExactness:
    """Incremental estimates must equal cold full re-estimations exactly."""

    def test_incremental_equals_cold_across_random_workflows(self):
        generator = RandomWorkflowGenerator()
        service = CostService(CLUSTER)  # shared across all seeds: worst case for staleness
        for seed in PROPERTY_SEEDS:
            generated = generator.generate(seed)
            plan = generated.plan
            rng = DeterministicRNG(seed)
            for step in range(5):
                incremental = service.estimate_workflow(plan.workflow)
                cold = WhatIfEngine(CLUSTER).estimate_workflow(plan.workflow)
                _assert_estimates_identical(
                    incremental, cold, context=f"seed={seed} step={step}"
                )
                _random_config_perturbation(plan, rng)
        # The sweep must have exercised the cache, not bypassed it.
        assert service.stats.job_cache_hits + service.stats.job_dataflow_hits > 0

    def test_incremental_equals_cold_across_structural_transformations(self):
        generator = RandomWorkflowGenerator()
        service = CostService(CLUSTER)
        transformations = (
            IntraJobVerticalPacking(),
            InterJobVerticalPacking(),
            HorizontalPacking(),
        )
        checked = 0
        for seed in PROPERTY_SEEDS[:10]:
            generated = generator.generate(seed)
            plan = generated.plan
            service.estimate_workflow(plan.workflow)  # warm the cache
            for transformation in transformations:
                for application in transformation.find_applications(plan, tuple(plan.job_names))[:2]:
                    transformed = transformation.apply(plan, application)
                    incremental = service.estimate_workflow(transformed.workflow)
                    cold = WhatIfEngine(CLUSTER).estimate_workflow(transformed.workflow)
                    _assert_estimates_identical(
                        incremental, cold, context=f"seed={seed} {transformation.name}"
                    )
                    checked += 1
        assert checked > 0

    def test_profile_free_workflows_fall_back_identically(self):
        generated = RandomWorkflowGenerator().with_config(profile=False).generate(PROPERTY_SEEDS[0])
        service = CostService(CLUSTER)
        incremental = service.estimate_workflow(generated.workflow)
        cold = WhatIfEngine(CLUSTER).estimate_workflow(generated.workflow)
        assert incremental.cost_basis == "job_count" == cold.cost_basis
        assert incremental.total_s == cold.total_s
        assert service.stats.fallback_queries == 1


class TestStatsInvariants:
    def test_lookup_classification_adds_up(self):
        generator = RandomWorkflowGenerator()
        service = CostService(CLUSTER)
        num_jobs = 0
        queries = 0
        for seed in PROPERTY_SEEDS[:8]:
            plan = generator.generate(seed).plan
            rng = DeterministicRNG(seed)
            for _ in range(4):
                service.estimate_workflow(plan.workflow)
                queries += 1
                num_jobs += plan.num_jobs
                _random_config_perturbation(plan, rng)
        stats = service.stats
        # Every query and every job lookup is accounted for, exactly once.
        assert stats.queries == queries
        assert stats.job_queries == num_jobs
        assert (
            stats.job_cache_hits + stats.job_dataflow_hits + stats.job_full_recosts
            == stats.job_queries
        )
        assert stats.job_cache_misses == stats.job_dataflow_hits + stats.job_full_recosts
        assert 0.0 <= stats.cache_hit_rate <= stats.reuse_rate <= 1.0
        assert stats.full_estimates <= stats.queries

    def test_repeated_estimate_is_all_hits(self):
        workload = _profiled("IR")
        service = CostService(CLUSTER)
        first = service.estimate_workflow(workload.workflow)
        before = service.stats.snapshot()
        second = service.estimate_workflow(workload.workflow)
        delta = service.stats.since(before)
        assert delta.queries == 1
        assert delta.job_cache_hits == workload.workflow.num_jobs
        assert delta.job_full_recosts == 0 and delta.job_dataflow_hits == 0
        assert delta.full_estimates == 0
        assert first.total_s == second.total_s

    def test_disabled_cache_is_pass_through(self):
        workload = _profiled("IR")
        service = CostService(CLUSTER, enable_cache=False)
        service.estimate_workflow(workload.workflow)
        service.estimate_workflow(workload.workflow)
        stats = service.stats
        assert stats.job_cache_hits == 0 and stats.job_dataflow_hits == 0
        assert stats.job_full_recosts == 2 * workload.workflow.num_jobs
        assert stats.full_estimates == 2
        assert service.cache_size == 0

    def test_cache_eviction_respects_bound(self):
        generator = RandomWorkflowGenerator()
        service = CostService(CLUSTER, max_cache_entries=5)
        for seed in PROPERTY_SEEDS[:6]:
            service.estimate_workflow(generator.generate(seed).workflow)
        assert service.cache_size <= 5


class TestOptimizerIntegration:
    @pytest.mark.parametrize("abbr", WORKLOAD_ORDER)
    def test_optimizer_decisions_identical_with_and_without_cache(self, abbr):
        """Memoization must never change what the optimizer picks (fixed seed)."""
        workload = _profiled(abbr)
        cached = StubbyOptimizer(CLUSTER, seed=17).optimize(workload.plan)
        uncached = StubbyOptimizer(
            CLUSTER, seed=17, cost_service=CostService(CLUSTER, enable_cache=False)
        ).optimize(workload.plan)
        assert cached.plan.signature() == uncached.plan.signature()
        assert cached.estimated_cost_s == uncached.estimated_cost_s
        assert cached.transformations_applied == uncached.transformations_applied

    @pytest.mark.parametrize("abbr", WORKLOAD_ORDER)
    def test_at_least_5x_fewer_full_whatif_computations(self, abbr):
        """Acceptance: >=5x fewer full-workflow computations per optimize().

        The pre-refactor search computed every workflow estimate cold, so
        its full-computation count equals the service's ``queries`` counter.
        """
        workload = _profiled(abbr)
        result = StubbyOptimizer(CLUSTER, seed=17).optimize(workload.plan)
        stats = result.cost_stats
        assert stats is not None and stats.queries > 0
        # Queries that reused nothing at all are now rare...
        assert stats.full_estimates * 5 <= stats.queries
        # ...and so is the job-weighted amount of full-depth costing work.
        assert stats.effective_full_estimates * 5 <= stats.queries

    def test_unit_reports_carry_cost_stats(self):
        workload = _profiled("IR")
        result = StubbyOptimizer(CLUSTER).optimize(workload.plan)
        assert result.unit_reports
        total_queries = sum(report.cost_queries for report in result.unit_reports)
        assert total_queries > 0
        assert result.whatif_queries >= total_queries
        for report in result.unit_reports:
            assert report.jobs_recosted >= 0 and report.job_cache_hits >= 0

    def test_baselines_report_cost_stats(self):
        from repro.baselines import MRShareOptimizer, StarfishOptimizer

        workload = _profiled("IR")
        for optimizer in (StarfishOptimizer(CLUSTER), MRShareOptimizer(CLUSTER)):
            result = optimizer.optimize(workload.plan)
            assert result.cost_stats is not None
            assert result.cost_stats.queries > 0

    def test_shared_service_reuses_across_optimizers(self):
        """One service threaded through several optimizers shares its cache."""
        workload = _profiled("IR")
        service = CostService(CLUSTER)
        StubbyOptimizer(CLUSTER, cost_service=service).optimize(workload.plan)
        before = service.stats.snapshot()
        StubbyOptimizer(CLUSTER, cost_service=service).optimize(workload.plan)
        delta = service.stats.since(before)
        # The second run starts from a warm cache: nothing is cold.
        assert delta.full_estimates == 0


class TestMergeProvenance:
    def test_packing_records_merge_lineage(self):
        workload = _profiled("IR")
        result = StubbyOptimizer(CLUSTER).optimize(workload.plan)
        if any("+" in name for name in result.plan.job_names):
            merged = [name for name in result.plan.job_names if "+" in name]
            for name in merged:
                sources = result.plan.merge_sources(name)
                assert len(sources) > 1
                # Lineage names original jobs, never intermediate merges.
                assert all(workload.workflow.has_job(source) for source in sources)

    def test_record_merge_flattens_transitively(self):
        workload = _profiled("IR")
        plan = workload.plan
        plan.record_merge("A+B", ("IR_J1", "IR_J2"))
        plan.record_merge("A+B+C", ("A+B", "IR_J3"))
        assert plan.merge_sources("A+B+C") == ("IR_J1", "IR_J2", "IR_J3")
        assert plan.merge_sources("IR_J1") == ("IR_J1",)
        copied = plan.copy()
        assert copied.merge_sources("A+B+C") == ("IR_J1", "IR_J2", "IR_J3")

    def test_record_unit_jobs_uses_lineage_not_names(self):
        """Merged jobs are attributed to units via provenance, not '+'-parsing."""
        workload = _profiled("IR")
        plan = workload.plan
        unit = OptimizationUnit(producers=("IR_J1",), consumers=("IR_J2",))

        merged = plan.copy()
        vertex = merged.workflow.job("IR_J1")
        # Rename the job to something '+'-parsing could never attribute.
        renamed_job = vertex.job.copy(name="fused_scan_group")
        merged.workflow.replace_job("IR_J1", renamed_job, vertex.annotations)
        merged.workflow.remove_job("IR_J2")
        merged.workflow.prune_orphan_datasets()
        merged.record_merge("fused_scan_group", ("IR_J1", "IR_J2"))

        record = SubplanRecord(plan=merged, transformations=("inter-job-vertical-packing",))
        assert "fused_scan_group" in record_unit_jobs(record, unit)
