"""Tests for the What-if cost model, actual-cost model, and adjustments."""

import pytest

from repro.cluster import ClusterSpec
from repro.mapreduce.config import JobConfig
from repro.profiler import Profiler
from repro.whatif import (
    ActualCostModel,
    JobDataflow,
    WhatIfEngine,
    adjust_profile_for_horizontal_packing,
    adjust_profile_for_inter_job_packing,
    adjust_profile_for_intra_job_packing,
    estimate_job_time,
)
from repro.whatif.scheduling import level_makespan, workflow_makespan
from repro.workflow.annotations import ProfileAnnotation
from repro.workflow.executor import WorkflowExecutor
from repro.workloads import build_workload

CLUSTER = ClusterSpec.paper_cluster()
GB = 1024.0 ** 3


def _dataflow(**overrides):
    base = dict(
        input_bytes=10 * GB,
        input_records=1e8,
        map_output_records=1e8,
        map_output_bytes=10 * GB,
        shuffle_records=1e8,
        shuffle_bytes=10 * GB,
        reduce_input_records=1e8,
        output_records=1e7,
        output_bytes=1 * GB,
        map_cpu_cost_per_record=2.0,
        reduce_cpu_cost_per_record=2.0,
    )
    base.update(overrides)
    return JobDataflow(**base)


class TestJobModel:
    def test_more_input_takes_longer(self):
        small = estimate_job_time(_dataflow(), JobConfig(num_reduce_tasks=50), CLUSTER)
        big = estimate_job_time(
            _dataflow(input_bytes=100 * GB, input_records=1e9), JobConfig(num_reduce_tasks=50), CLUSTER
        )
        assert big.total_s > small.total_s

    def test_more_reducers_speed_up_reduce_phase(self):
        few = estimate_job_time(_dataflow(), JobConfig(num_reduce_tasks=2), CLUSTER)
        many = estimate_job_time(_dataflow(), JobConfig(num_reduce_tasks=100), CLUSTER)
        assert many.reduce_phase_s < few.reduce_phase_s

    def test_parallelism_capped_by_distinct_partition_keys(self):
        capped = estimate_job_time(
            _dataflow(distinct_partition_keys=2.0), JobConfig(num_reduce_tasks=100), CLUSTER
        )
        uncapped = estimate_job_time(_dataflow(), JobConfig(num_reduce_tasks=100), CLUSTER)
        assert capped.reduce_phase_s > uncapped.reduce_phase_s

    def test_map_only_has_no_shuffle_or_reduce(self):
        estimate = estimate_job_time(_dataflow(map_only=True), JobConfig(num_reduce_tasks=0), CLUSTER)
        assert estimate.shuffle_s == 0.0
        assert estimate.reduce_phase_s == 0.0

    def test_compression_reduces_shuffle_time(self):
        plain = estimate_job_time(_dataflow(), JobConfig(num_reduce_tasks=50), CLUSTER)
        compressed = estimate_job_time(
            _dataflow(), JobConfig(num_reduce_tasks=50, compress_map_output=True), CLUSTER
        )
        assert compressed.shuffle_s < plain.shuffle_s

    def test_chained_map_tasks_override_split_derivation(self):
        estimate = estimate_job_time(
            _dataflow(chained_map_tasks=17), JobConfig(num_reduce_tasks=10), CLUSTER
        )
        assert estimate.num_map_tasks == 17

    def test_pipeline_contention_costs_more(self):
        single = estimate_job_time(_dataflow(), JobConfig(num_reduce_tasks=50), CLUSTER)
        packed = estimate_job_time(_dataflow(pipeline_count=3), JobConfig(num_reduce_tasks=50), CLUSTER)
        assert packed.total_s > single.total_s

    def test_dataflow_validation(self):
        with pytest.raises(ValueError):
            _dataflow(input_bytes=-1)
        with pytest.raises(ValueError):
            _dataflow(pipeline_count=0)

    def test_dataflow_scaling(self):
        doubled = _dataflow().scaled(2.0)
        assert doubled.input_bytes == 2 * _dataflow().input_bytes


class TestScheduling:
    def test_single_job_level(self):
        estimate = estimate_job_time(_dataflow(), JobConfig(num_reduce_tasks=50), CLUSTER)
        assert level_makespan([estimate], CLUSTER) == estimate.total_s

    def test_two_small_jobs_run_concurrently(self):
        small = _dataflow(input_bytes=0.5 * GB, input_records=1e6, map_output_bytes=0.1 * GB,
                          map_output_records=1e5, shuffle_records=1e5, shuffle_bytes=0.1 * GB,
                          reduce_input_records=1e5, output_records=1e4, output_bytes=0.01 * GB)
        estimate = estimate_job_time(small, JobConfig(num_reduce_tasks=4), CLUSTER)
        level = level_makespan([estimate, estimate], CLUSTER)
        assert level < 2 * estimate.total_s * 0.95

    def test_workflow_makespan_sums_levels(self):
        estimate = estimate_job_time(_dataflow(), JobConfig(num_reduce_tasks=50), CLUSTER)
        total = workflow_makespan([[estimate], [estimate]], CLUSTER)
        assert total == pytest.approx(2 * estimate.total_s)


class TestWhatIfEngine:
    @pytest.fixture(scope="class")
    def profiled_ir(self):
        workload = build_workload("IR", scale=0.15)
        Profiler().profile_workflow(workload.workflow, workload.base_datasets)
        return workload

    def test_estimate_produces_per_job_costs(self, profiled_ir):
        estimate = WhatIfEngine(CLUSTER).estimate_workflow(profiled_ir.workflow)
        assert estimate.cost_basis == "whatif"
        assert set(estimate.per_job) == {"IR_J1", "IR_J2", "IR_J3"}
        assert estimate.total_s > 0

    def test_estimate_matches_actual_for_profiled_plan(self, profiled_ir):
        """With full (noise-free) profiles the estimate equals the measured cost."""
        executor = WorkflowExecutor()
        execution, filesystem = executor.execute(
            profiled_ir.workflow.copy(), base_datasets=profiled_ir.base_datasets
        )
        estimated = WhatIfEngine(CLUSTER).estimate_workflow(profiled_ir.workflow).total_s
        actual = ActualCostModel(CLUSTER).workflow_cost(
            profiled_ir.workflow, execution, filesystem
        ).total_s
        assert estimated == pytest.approx(actual, rel=0.15)

    def test_fallback_to_job_count_without_profiles(self):
        workload = build_workload("IR", scale=0.15)
        estimate = WhatIfEngine(CLUSTER).estimate_workflow(workload.workflow)
        assert estimate.cost_basis == "job_count"
        assert estimate.total_s == pytest.approx(1000.0 * workload.num_jobs)

    def test_fewer_reduce_tasks_estimated_slower(self, profiled_ir):
        from repro.core.plan import Plan

        plan = Plan(profiled_ir.workflow.copy())
        slow = plan.copy()
        slow.set_job_config("IR_J1", slow.job("IR_J1").job.config.replace(num_reduce_tasks=1))
        fast = plan.copy()
        fast.set_job_config("IR_J1", fast.job("IR_J1").job.config.replace(num_reduce_tasks=90))
        engine = WhatIfEngine(CLUSTER)
        assert engine.estimate_workflow(fast.workflow).total_s < engine.estimate_workflow(slow.workflow).total_s


class TestAdjustments:
    def test_intra_adjustment_multiplies_selectivities(self):
        producer = ProfileAnnotation(map_selectivity=1.0, reduce_selectivity=0.5)
        consumer = ProfileAnnotation(
            map_selectivity=0.4, reduce_selectivity=0.5,
            map_cpu_cost_per_record=2.0, reduce_cpu_cost_per_record=10.0,
        )
        adjusted = adjust_profile_for_intra_job_packing(producer, consumer)
        assert adjusted.map_selectivity == pytest.approx(0.2)
        assert adjusted.reduce_selectivity == 1.0
        assert adjusted.map_cpu_cost_per_record == pytest.approx(2.0 + 0.4 * 10.0)

    def test_inter_adjustment_map_side(self):
        surviving = ProfileAnnotation(map_selectivity=0.5, map_cpu_cost_per_record=1.0)
        absorbed = ProfileAnnotation(map_selectivity=0.2, map_cpu_cost_per_record=4.0)
        adjusted = adjust_profile_for_inter_job_packing(surviving, absorbed, absorbed_into_map_side=True)
        assert adjusted.map_selectivity == pytest.approx(0.1)

    def test_inter_adjustment_reduce_side(self):
        surviving = ProfileAnnotation(reduce_selectivity=0.5, reduce_cpu_cost_per_record=2.0)
        absorbed = ProfileAnnotation(map_selectivity=0.3, map_cpu_cost_per_record=1.0)
        adjusted = adjust_profile_for_inter_job_packing(surviving, absorbed, absorbed_into_map_side=False)
        assert adjusted.reduce_selectivity == pytest.approx(0.15)

    def test_horizontal_adjustment_adds_selectivities_and_costs(self):
        profiles = [
            ProfileAnnotation(map_selectivity=0.5, map_cpu_cost_per_record=1.0),
            ProfileAnnotation(map_selectivity=0.25, map_cpu_cost_per_record=3.0),
        ]
        adjusted = adjust_profile_for_horizontal_packing(profiles)
        assert adjusted.map_selectivity == pytest.approx(0.75)
        assert adjusted.map_cpu_cost_per_record == pytest.approx(4.0)

    def test_horizontal_adjustment_requires_profiles(self):
        with pytest.raises(ValueError):
            adjust_profile_for_horizontal_packing([])
