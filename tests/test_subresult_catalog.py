"""Sub-result catalog: signature identity, invalidation, staleness, persistence.

The contracts the ReStore-style catalog (``docs/reuse.md``) must honour,
mirroring ``tests/test_decision_cache.py`` for the decision cache:

* **Identity** — rebuilding the same workflow from the same seed produces
  the same subgraph content signature, and the shared prefix of a
  :meth:`~repro.verification.generator.RandomWorkflowGenerator.
  shared_prefix_pair` signs identically across the pair — the cross-workflow
  hit the reuse rewrite depends on.
* **Invalidation** — changing *any* content input (a job configuration, a
  partition function, a dataset annotation, the base records, the cluster,
  the cost-model version) changes the signature: the catalog misses, never
  serves bytes the submitted subgraph would not have produced.
* **Staleness** — an entry whose backing records were deleted is skipped
  (``stale_skips``), an applied rewrite referencing it aborts with
  :class:`SubResultUnavailableError`, and a memoized decision that replays
  such a rewrite falls back to a fresh search — recomputation, never a
  failed plan.
* **Persistence** — corrupt, truncated, or version/cluster-mismatched
  catalog files are rejected wholesale without raising, exactly like the
  cost and decision caches.
"""

import dataclasses
import os
import pickle

import pytest

from repro.cluster import ClusterSpec
from repro.core.decision_cache import DecisionCache
from repro.core.optimizer import StubbyOptimizer
from repro.core.search import StubbySearch
from repro.core.subresults import (
    SUBRESULT_CATALOG_FORMAT_VERSION,
    SubResultCatalog,
    SubResultCatalogStats,
    SubResultEntry,
    SubResultUnavailableError,
    dataset_content_fingerprint,
    ensure_subresult_catalog,
    producing_cone,
    register_workflow_outputs,
    resolve_subresult_catalog_path,
    subgraph_signature,
    subresult_catalog_enabled,
)
from repro.dfs.dataset import Dataset
from repro.experiments.harness import ExperimentHarness
from repro.mapreduce.partitioner import PartitionFunction
from repro.verification.generator import RandomWorkflowGenerator
from repro.whatif import model as whatif_model
from repro.workflow.executor import WorkflowExecutor

CLUSTER = ClusterSpec.paper_cluster()

fingerprint = StubbySearch._plan_decision_fingerprint

SEED = 42
P0, P1 = f"shared{SEED}_p0", f"shared{SEED}_p1"
SRC = f"shared{SEED}_src"


def _pair(seed=SEED):
    return RandomWorkflowGenerator().shared_prefix_pair(seed)


def _execute_and_register(catalog, generated, origin=None):
    """Execute a generated workflow and register its intermediates."""
    result, _fs = WorkflowExecutor().execute(
        generated.workflow.copy(), generated.base_datasets, collect_outputs=True
    )
    outputs = {}
    for per_job in result.job_outputs.values():
        outputs.update(per_job)
    return register_workflow_outputs(
        catalog, generated.workflow, outputs, origin=origin
    )


def _signatures(catalog):
    return [
        signature
        for rows in catalog._cache.shard_items()
        for signature, _entry, _origin in rows
    ]


class TestSignatures:
    def test_identical_rebuild_produces_identical_signatures(self):
        first, second = _pair()
        sig = subgraph_signature(first.workflow, P1, CLUSTER)
        # The pair's prefix is rebuilt from the same seeded forks: the
        # producing subgraph of p1 signs identically in both workflows even
        # though their tails differ.
        assert subgraph_signature(second.workflow, P1, CLUSTER) == sig
        # A full regeneration from the seed reproduces the signature too.
        rebuilt, _ = _pair()
        assert subgraph_signature(rebuilt.workflow, P1, CLUSTER) == sig
        # Different seeds produce different base data, hence different keys.
        other, _ = _pair(SEED + 1)
        assert (
            subgraph_signature(other.workflow, f"shared{SEED + 1}_p1", CLUSTER) != sig
        )

    def test_producing_cone_walks_to_base_inputs(self):
        first, _ = _pair()
        cone, bases = producing_cone(first.workflow, P1)
        assert cone == (f"S{SEED}_J0", f"S{SEED}_J1")
        assert bases == (SRC,)
        # A workflow input has an empty cone and is its own base.
        assert producing_cone(first.workflow, SRC) == ((), (SRC,))

    def test_job_config_change_misses(self):
        first, _ = _pair()
        before = subgraph_signature(first.workflow, P1, CLUSTER)
        vertex = first.workflow.job(f"S{SEED}_J0")
        config = vertex.job.config
        mutated = config.with_settings({"split_size_mb": config.split_size_mb * 2})
        first.workflow.replace_job(f"S{SEED}_J0", vertex.job.with_config(mutated))
        assert subgraph_signature(first.workflow, P1, CLUSTER) != before

    def test_partitioner_change_misses(self):
        first, _ = _pair()
        before = subgraph_signature(first.workflow, P1, CLUSTER)
        vertex = first.workflow.job(f"S{SEED}_J1")
        current = vertex.job.effective_partitioner
        forced = PartitionFunction(
            kind="hash", fields=current.fields, sort_fields=current.fields + ("extra",)
        )
        first.workflow.replace_job(f"S{SEED}_J1", vertex.job.with_partitioner(forced))
        assert subgraph_signature(first.workflow, P1, CLUSTER) != before

    def test_dataset_annotation_change_misses(self):
        first, _ = _pair()
        before = subgraph_signature(first.workflow, P1, CLUSTER)
        annotated = first.workflow.dataset(SRC)
        annotated.annotation = dataclasses.replace(
            annotated.annotation, size_bytes=annotated.annotation.size_bytes * 2
        )
        assert subgraph_signature(first.workflow, P1, CLUSTER) != before

    def test_base_record_change_misses(self):
        first, _ = _pair()
        before = subgraph_signature(first.workflow, P1, CLUSTER)
        vertex = first.workflow.dataset(SRC)
        records = [dict(record) for record in vertex.dataset.records()][:-1]
        first.workflow.add_dataset(
            SRC,
            dataset=Dataset(SRC, records=records, scale_factor=vertex.dataset.scale_factor),
            annotation=vertex.annotation,
        )
        # Same structure over different base bytes must never share an entry.
        assert subgraph_signature(first.workflow, P1, CLUSTER) != before

    def test_cluster_change_misses(self):
        first, _ = _pair()
        other = dataclasses.replace(CLUSTER, num_nodes=CLUSTER.num_nodes + 1)
        assert subgraph_signature(first.workflow, P1, CLUSTER) != subgraph_signature(
            first.workflow, P1, other
        )

    def test_cost_model_version_change_misses(self, monkeypatch):
        first, _ = _pair()
        before = subgraph_signature(first.workflow, P1, CLUSTER)
        monkeypatch.setattr(
            whatif_model, "COST_MODEL_VERSION", whatif_model.COST_MODEL_VERSION + 1
        )
        assert subgraph_signature(first.workflow, P1, CLUSTER) != before

    def test_record_fingerprint_is_order_independent(self):
        rows = [{"k": 1, "v": "a"}, {"k": 2, "v": "b"}]
        assert dataset_content_fingerprint(
            Dataset("d", records=rows)
        ) == dataset_content_fingerprint(Dataset("d", records=list(reversed(rows))))
        assert dataset_content_fingerprint(
            Dataset("d", records=rows)
        ) != dataset_content_fingerprint(Dataset("d", records=rows[:1]))
        assert dataset_content_fingerprint(None) is None


class TestCatalogTraffic:
    def test_registration_stores_only_intermediates(self):
        first, _ = _pair()
        catalog = SubResultCatalog(CLUSTER)
        registered = _execute_and_register(catalog, first)
        # Exactly the two prefix intermediates: the base input has no
        # producer and the tail output has no consumer.
        assert registered == 2
        assert catalog.catalog_size == 2
        assert catalog.stats_snapshot().stores == 2
        names = {sig[1] for sig in _signatures(catalog)}
        assert names == {P0, P1}

    def test_probe_hit_miss_and_cross_origin_accounting(self):
        first, second = _pair()
        catalog = SubResultCatalog(CLUSTER)
        _execute_and_register(catalog, first, origin="producer")
        signature = subgraph_signature(second.workflow, P1, CLUSTER)

        sink = SubResultCatalogStats()
        with catalog.attribute_to(sink):
            entry = catalog.probe(signature, origin="producer")
            assert entry is not None and entry.has_payload
            assert entry.producing_jobs == (f"S{SEED}_J0", f"S{SEED}_J1")
            # Same origin: a hit, but not a cross-origin one.
            assert sink.cross_origin_hits == 0
            assert catalog.probe(signature, origin="consumer") is not None
            assert catalog.probe(("subresult", "nonsense"), origin="consumer") is None
        assert sink.hits == 2
        assert sink.misses == 1
        assert sink.cross_origin_hits == 1
        assert sink.lookups == 3
        assert sink.hit_rate == pytest.approx(2 / 3)

    def test_origin_context_manager_labels_stores_and_hits(self):
        first, _ = _pair()
        catalog = SubResultCatalog(CLUSTER)
        with catalog.origin("wave-1"):
            _execute_and_register(catalog, first)
        signature = subgraph_signature(first.workflow, P1, CLUSTER)
        with catalog.origin("wave-2"):
            assert catalog.probe(signature) is not None
        assert catalog.stats_snapshot().cross_origin_hits == 1
        with catalog.origin("wave-1"):
            assert catalog.probe(signature) is not None
        assert catalog.stats_snapshot().cross_origin_hits == 1

    def test_stale_entry_is_skipped_and_fetch_raises(self):
        first, _ = _pair()
        catalog = SubResultCatalog(CLUSTER)
        _execute_and_register(catalog, first)
        signature = subgraph_signature(first.workflow, P1, CLUSTER)
        assert catalog.evict_payload(signature)
        # The signature survives but the backing data is gone: probes skip
        # it quietly, fetches (an applied rewrite) fail loudly.
        assert catalog.probe(signature) is None
        assert catalog.stats_snapshot().stale_skips == 1
        with pytest.raises(SubResultUnavailableError):
            catalog.fetch(signature)
        assert not catalog.evict_payload(("subresult", "absent"))

    def test_disabled_catalog_is_behaviourally_invisible(self):
        first, _ = _pair()
        catalog = SubResultCatalog(CLUSTER, enabled=False)
        assert _execute_and_register(catalog, first) == 0
        catalog.store(("subresult", "x"), SubResultEntry("x", (), None))
        assert catalog.catalog_size == 0
        assert catalog.probe(("subresult", "x")) is None
        assert catalog.stats_snapshot().lookups == 0
        with pytest.raises(SubResultUnavailableError, match="disabled"):
            catalog.fetch(("subresult", "x"))
        assert catalog.decision_key_content() == ("subresult-catalog", "disabled")

    def test_catalog_sharing_across_clusters_is_refused(self):
        other = dataclasses.replace(CLUSTER, num_nodes=CLUSTER.num_nodes + 1)
        with pytest.raises(ValueError, match="different ClusterSpec"):
            ensure_subresult_catalog(other, SubResultCatalog(CLUSTER))
        shared = SubResultCatalog(CLUSTER)
        assert ensure_subresult_catalog(CLUSTER, shared) is shared

    def test_decision_key_content_moves_with_the_catalog(self):
        first, _ = _pair()
        catalog = SubResultCatalog(CLUSTER)
        empty = catalog.decision_key_content()
        _execute_and_register(catalog, first)
        warm = catalog.decision_key_content()
        assert warm != empty
        assert catalog.decision_key_content() == warm  # cached between mutations
        catalog.evict_payload(subgraph_signature(first.workflow, P1, CLUSTER))
        assert catalog.decision_key_content() != warm
        catalog.invalidate()
        assert catalog.catalog_size == 0


class TestStaleFallback:
    def test_stale_entry_under_decision_replay_falls_back_to_recompute(self):
        """The deployment fault: data deleted between warm runs.

        Run 1 records unit decisions that substitute stored sub-results.
        The backing records are then deleted (``evict_payload``).  Run 2
        replays those decisions, hits :class:`SubResultUnavailableError`,
        invalidates the memoized decision, and re-searches — landing on the
        recompute plan a catalog-less optimizer would have picked.
        """
        first, second = _pair()
        catalog = SubResultCatalog(CLUSTER)
        _execute_and_register(catalog, first, origin="producer")
        decisions = DecisionCache(CLUSTER, enabled=True)
        optimizer = StubbyOptimizer(
            CLUSTER, subresult_catalog=catalog, decision_cache=decisions
        )
        warm = optimizer.optimize(second.plan)
        assert warm.subresult_reuse_applications >= 1
        assert warm.jobs_eliminated_by_reuse >= 2

        for signature in _signatures(catalog):
            catalog.evict_payload(signature)
        replayed = optimizer.optimize(second.plan)
        assert replayed.subresult_reuse_applications == 0
        assert replayed.jobs_eliminated_by_reuse == 0

        reference = StubbyOptimizer(CLUSTER).optimize(_pair()[1].plan)
        assert fingerprint(replayed.plan) == fingerprint(reference.plan)

    def test_cold_search_over_stale_catalog_recomputes(self):
        first, second = _pair()
        catalog = SubResultCatalog(CLUSTER)
        _execute_and_register(catalog, first)
        for signature in _signatures(catalog):
            catalog.evict_payload(signature)
        # find_applications probes, sees no payload, proposes nothing: the
        # candidate set is exactly the recompute one.
        result = StubbyOptimizer(CLUSTER, subresult_catalog=catalog).optimize(
            second.plan
        )
        assert result.subresult_reuse_applications == 0
        reference = StubbyOptimizer(CLUSTER).optimize(_pair()[1].plan)
        assert fingerprint(result.plan) == fingerprint(reference.plan)


class TestPersistence:
    def _warm_catalog(self, path=None):
        first, second = _pair()
        catalog = SubResultCatalog(CLUSTER, cache_path=path)
        _execute_and_register(catalog, first, origin="producer")
        return catalog, first, second

    def test_round_trip_restores_every_entry(self, tmp_path):
        path = str(tmp_path / "subresults.catalog")
        catalog, first, second = self._warm_catalog()
        written = catalog.save_cache(path)
        assert written == catalog.catalog_size == 2

        warmed = SubResultCatalog(CLUSTER, cache_path=path)
        assert warmed.last_load is not None and warmed.last_load.loaded
        assert warmed.last_load.entries == written
        entry = warmed.probe(subgraph_signature(second.workflow, P1, CLUSTER))
        assert entry is not None and entry.has_payload
        # Entries keep the origin they were registered under, so disk-warm
        # hits from another origin still count as cross-origin reuse.
        assert warmed.stats_snapshot().cross_origin_hits == 1
        # And the restored records drive the same rewrite the live catalog
        # would have: the warmed optimizer eliminates the shared prefix.
        result = StubbyOptimizer(CLUSTER, subresult_catalog=warmed).optimize(
            second.plan
        )
        assert result.jobs_eliminated_by_reuse >= 2

    def test_save_and_load_require_a_path(self):
        catalog = SubResultCatalog(CLUSTER)
        with pytest.raises(ValueError, match="no catalog path"):
            catalog.save_cache()
        with pytest.raises(ValueError, match="no catalog path"):
            catalog.load_cache()

    def test_missing_file_reports_cleanly(self, tmp_path):
        catalog = SubResultCatalog(CLUSTER, cache_path=str(tmp_path / "absent"))
        assert catalog.last_load is not None
        assert not catalog.last_load.loaded
        assert "no catalog file" in catalog.last_load.reason

    def test_corrupt_file_is_rejected_quietly(self, tmp_path):
        path = tmp_path / "subresults.catalog"
        path.write_bytes(b"this is not a pickle")
        catalog = SubResultCatalog(CLUSTER, cache_path=str(path))
        assert not catalog.last_load.loaded
        assert "unreadable" in catalog.last_load.reason
        assert catalog.catalog_size == 0

    def test_truncated_file_is_rejected_quietly(self, tmp_path):
        path = str(tmp_path / "subresults.catalog")
        catalog, _, _ = self._warm_catalog()
        catalog.save_cache(path)
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) // 2])
        reloaded = SubResultCatalog(CLUSTER, cache_path=path)
        assert not reloaded.last_load.loaded
        assert "unreadable" in reloaded.last_load.reason
        assert reloaded.catalog_size == 0

    def _rewrite_payload(self, path, **overrides):
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload.update(overrides)
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)

    def test_format_version_mismatch_is_rejected(self, tmp_path):
        path = str(tmp_path / "subresults.catalog")
        catalog, _, _ = self._warm_catalog()
        catalog.save_cache(path)
        self._rewrite_payload(path, format_version=SUBRESULT_CATALOG_FORMAT_VERSION + 1)
        reloaded = SubResultCatalog(CLUSTER, cache_path=path)
        assert not reloaded.last_load.loaded
        assert "format version" in reloaded.last_load.reason

    def test_model_version_mismatch_is_rejected(self, tmp_path, monkeypatch):
        path = str(tmp_path / "subresults.catalog")
        catalog, _, _ = self._warm_catalog()
        catalog.save_cache(path)
        monkeypatch.setattr(
            whatif_model, "COST_MODEL_VERSION", whatif_model.COST_MODEL_VERSION + 1
        )
        reloaded = SubResultCatalog(CLUSTER, cache_path=path)
        assert not reloaded.last_load.loaded
        assert "model version" in reloaded.last_load.reason

    def test_cluster_mismatch_is_rejected(self, tmp_path):
        path = str(tmp_path / "subresults.catalog")
        catalog, _, _ = self._warm_catalog()
        catalog.save_cache(path)
        other = dataclasses.replace(CLUSTER, num_nodes=CLUSTER.num_nodes + 1)
        reloaded = SubResultCatalog(other, cache_path=path)
        assert not reloaded.last_load.loaded
        assert "different ClusterSpec" in reloaded.last_load.reason

    def test_malformed_entries_are_rejected_wholesale(self, tmp_path):
        path = str(tmp_path / "subresults.catalog")
        catalog, _, _ = self._warm_catalog()
        catalog.save_cache(path)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["entries"].append(("bad row",))
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        reloaded = SubResultCatalog(CLUSTER, cache_path=path)
        assert not reloaded.last_load.loaded
        assert "malformed catalog entries" in reloaded.last_load.reason
        assert reloaded.catalog_size == 0

    def test_merge_first_save_never_shrinks_a_richer_store(self, tmp_path):
        path = str(tmp_path / "subresults.catalog")
        catalog, _, _ = self._warm_catalog()
        catalog.save_cache(path)
        sparse = SubResultCatalog(CLUSTER)
        assert sparse.save_cache(path, merge_first=True) == 2

    def test_env_var_controls_path_and_kill_switch(self, monkeypatch, tmp_path):
        env_path = str(tmp_path / "env-subresults.catalog")
        monkeypatch.setenv("STUBBY_SUBRESULT_CATALOG", env_path)
        assert resolve_subresult_catalog_path(None) == env_path
        assert resolve_subresult_catalog_path("explicit") == "explicit"
        assert resolve_subresult_catalog_path("") is None

        monkeypatch.setenv("STUBBY_SUBRESULT_CATALOG_ENABLED", "0")
        assert subresult_catalog_enabled() is False
        catalog = SubResultCatalog(CLUSTER)
        assert not catalog.enabled
        catalog.store(("subresult", "x"), SubResultEntry("x", (), None))
        assert catalog.catalog_size == 0
        monkeypatch.setenv("STUBBY_SUBRESULT_CATALOG_ENABLED", "1")
        assert subresult_catalog_enabled() is True

    def test_harness_persists_and_warm_starts_the_catalog(self, tmp_path):
        path = str(tmp_path / "subresults.catalog")
        first = ExperimentHarness(scale=0.05, subresult_catalog_path=path)
        assert first.register_workload_subresults("IR") > 0
        result1 = first.run(workloads=["IR"], optimizers=("Stubby",))
        assert os.path.exists(path)
        assert result1.subresult_catalog_path == path
        assert result1.jobs_eliminated_by_reuse >= 1

        second = ExperimentHarness(scale=0.05, subresult_catalog_path=path)
        assert second.subresults.last_load.loaded
        result2 = second.run(workloads=["IR"], optimizers=("Stubby",))
        assert result2.jobs_eliminated_by_reuse >= 1
        assert result2.subresult_stats.cross_origin_hits > 0
        assert result1.decision_fingerprint() == result2.decision_fingerprint()
