"""Tests for the experiment harness and the Figure 5 micro-benchmarks."""

import pytest

from repro.cluster import ClusterSpec
from repro.experiments import (
    ExperimentHarness,
    horizontal_packing_tradeoff,
    vertical_packing_tradeoff,
)


@pytest.fixture(scope="module")
def harness():
    return ExperimentHarness(cluster=ClusterSpec.paper_cluster(), scale=0.15)


@pytest.fixture(scope="module")
def pj_comparison(harness):
    return harness.compare("PJ", optimizers=("Baseline", "Stubby", "Vertical", "Horizontal"))


class TestHarness:
    def test_comparison_contains_all_optimizers(self, pj_comparison):
        assert set(pj_comparison.runs) == {"Baseline", "Stubby", "Vertical", "Horizontal"}

    def test_every_optimized_plan_is_equivalent(self, pj_comparison):
        assert all(run.output_equivalent for run in pj_comparison.runs.values())

    def test_baseline_speedup_is_one(self, pj_comparison):
        assert pj_comparison.speedup("Baseline") == pytest.approx(1.0)

    def test_stubby_beats_baseline_on_pj(self, pj_comparison):
        assert pj_comparison.speedup("Stubby") > 1.0

    def test_cost_based_optimizers_do_not_pack_pj(self, pj_comparison):
        # The Baseline packs the two consumer jobs; Stubby keeps them separate.
        assert pj_comparison.runs["Baseline"].num_jobs == 2
        assert pj_comparison.runs["Stubby"].num_jobs == 3

    def test_state_of_the_art_comparison(self, harness):
        comparison = harness.compare("PJ", optimizers=("Baseline", "Stubby", "MRShare"))
        assert comparison.speedup("Stubby") >= comparison.speedup("MRShare") * 0.9
        assert comparison.runs["MRShare"].num_jobs == 3

    def test_optimization_overhead_recorded(self, pj_comparison):
        stubby = pj_comparison.runs["Stubby"]
        assert stubby.optimization_time_s > 0.0

    def test_format_tables(self, harness, pj_comparison):
        speedups = harness.format_speedup_table([pj_comparison], ("Baseline", "Stubby"))
        assert "PJ" in speedups and "Stubby" in speedups
        overhead = harness.format_overhead_table([pj_comparison])
        assert "PJ" in overhead

    def test_unknown_optimizer_rejected(self, harness):
        with pytest.raises(KeyError):
            harness.make_optimizer("Oracle")

    def test_unit_deep_dive_shape(self, harness):
        rows = harness.unit_deep_dive("IR")
        assert len(rows) >= 2
        for transformations, estimated, actual in rows:
            assert estimated > 0 and actual > 0


class TestFigure5Microbenchmarks:
    def test_vertical_packing_tradeoff_directions(self):
        tradeoff = vertical_packing_tradeoff(num_records=600, logical_gb=150.0)
        assert tradeoff.favourable_speedup > 1.0
        assert tradeoff.unfavourable_speedup < 1.0
        assert tradeoff.favourable_speedup > tradeoff.unfavourable_speedup

    def test_horizontal_packing_tradeoff_directions(self):
        tradeoff = horizontal_packing_tradeoff(num_records=600, large_gb=400.0, small_gb=2.0)
        assert tradeoff.favourable_speedup > 1.0
        assert tradeoff.favourable_speedup > tradeoff.unfavourable_speedup

    def test_tradeoff_as_dict(self):
        tradeoff = vertical_packing_tradeoff(num_records=300, logical_gb=100.0)
        payload = tradeoff.as_dict()
        assert set(payload) == {"performance_improvement", "performance_degradation"}
