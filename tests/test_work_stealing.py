"""Work-stealing dispatch: identity, balance, fault tolerance, plumbing.

The contract under test is the one ``docs/search.md`` documents for
``dispatch="stealing"``: stealing changes *which worker* runs a request and
*when*, never the results — every backend returns the same responses in
request order as ``dispatch="static"``.  On top of identity the suite
asserts the two properties stealing exists for:

* **balance** — under heterogeneous request costs the counter-based
  imbalance metric :attr:`DispatchStats.idle_cost_units` is measurably
  lower than static round-robin dealing, with ``steals > 0`` proving the
  dynamic path actually ran (counters, not wall clocks, so it holds on
  1-CPU CI hosts too);
* **fault tolerance** (fork pools only) — a worker SIGKILLed mid-request
  loses exactly that request's chunk, which is retried on a survivor up to
  ``MAX_TASK_ATTEMPTS`` times; deterministic worker exceptions are *never*
  retried; when every worker is dead the session fails loudly.
"""

import os
import signal
import time

import pytest

from repro.cluster import ClusterSpec
from repro.core.parallel import (
    DISPATCH_KINDS,
    MAX_TASK_ATTEMPTS,
    DispatchStats,
    create_backend,
)
from repro.experiments import (
    EXPERIMENT_DISPATCH_ENV_VAR,
    ExperimentHarness,
    ExperimentScheduler,
    build_cells,
    resolve_experiment_dispatch,
)

#: One expensive request among cheap ones: static round-robin on two
#: workers deals slots [6+1+1+1, 1+1+1+1] (idle cost 5.0); a balanced
#: split is [7, 6] (idle cost 1.0).
WEIGHTS = [6.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]
REQUESTS = list(range(len(WEIGHTS)))


def _square(request: int) -> int:
    return request * request


def _weighted_sleep(request: int) -> int:
    time.sleep(0.02 * WEIGHTS[request])
    return request * request


def _run(spec: str, dispatch: str, worker_fn=_square, costs=WEIGHTS):
    backend = create_backend(spec)
    with backend.session(worker_fn, dispatch=dispatch) as session:
        responses = session.run(REQUESTS, costs=costs)
        return responses, session.dispatch_stats


class TestDispatchStats:
    def test_record_and_idle_cost_units(self):
        stats = DispatchStats(dispatch="stealing", workers=2)
        stats.record(0, 6.0)
        stats.record(1, 1.0, stolen=True)
        stats.record(1, 1.0, stolen=True)
        assert stats.tasks == 3
        assert stats.steals == 2
        assert stats.load_per_worker == [6.0, 2.0]
        # width * max(load) - sum(load): worker 1 idles 4 cost units while
        # worker 0 finishes its share.
        assert stats.idle_cost_units == pytest.approx(2 * 6.0 - 8.0)

    def test_accumulate_sums_counters_elementwise(self):
        a = DispatchStats(dispatch="stealing", workers=2)
        a.record(0, 2.0)
        a.runs = 1
        b = DispatchStats(dispatch="stealing", workers=3)
        b.record(2, 5.0, stolen=True)
        b.worker_deaths = 1
        b.retried_tasks = 1
        b.runs = 2
        a.accumulate(b)
        assert a.runs == 3
        assert a.tasks == 2
        assert a.steals == 1
        assert a.worker_deaths == 1
        assert a.retried_tasks == 1
        assert a.tasks_per_worker == [1, 0, 1]
        assert a.load_per_worker == [2.0, 0.0, 5.0]
        assert set(a.as_dict()) >= {"dispatch", "steals", "idle_cost_units"}

    def test_unknown_dispatch_rejected(self):
        for spec in ("serial", "thread:2", "process:2"):
            with pytest.raises(ValueError, match="dispatch"):
                create_backend(spec).session(_square, dispatch="bogus")
        assert set(DISPATCH_KINDS) == {"static", "stealing"}


class TestStealingIdentity:
    """Stealing returns exactly what static returns, in request order."""

    @pytest.mark.parametrize("spec", ["serial", "thread:1", "thread:2", "thread:4", "process:2"])
    def test_matches_static(self, spec):
        static, _ = _run(spec, "static")
        stolen, stats = _run(spec, "stealing")
        assert stolen == static == [r * r for r in REQUESTS]
        assert stats.tasks == len(REQUESTS)
        assert sum(stats.tasks_per_worker) == len(REQUESTS)
        assert sum(stats.load_per_worker) == pytest.approx(sum(WEIGHTS))

    def test_cost_length_mismatch_rejected(self):
        backend = create_backend("thread:2")
        with backend.session(_square, dispatch="stealing") as session:
            with pytest.raises(ValueError, match="costs"):
                session.run(REQUESTS, costs=[1.0])


class TestStealingBalance:
    """Idle-cost imbalance shrinks when idle workers pull work."""

    def test_thread_pool_balances_heterogeneous_load(self):
        static, static_stats = _run("thread:2", "static", worker_fn=_weighted_sleep)
        stolen, stealing_stats = _run("thread:2", "stealing", worker_fn=_weighted_sleep)
        assert stolen == static
        # Static round-robin is fully determined: slots [9, 4] of 13 units.
        assert static_stats.idle_cost_units == pytest.approx(5.0)
        assert static_stats.steals == 0
        assert stealing_stats.steals > 0
        assert stealing_stats.idle_cost_units < static_stats.idle_cost_units

    def test_fork_pool_balances_heterogeneous_load(self):
        static, static_stats = _run("process:2", "static", worker_fn=_weighted_sleep)
        stolen, stealing_stats = _run("process:2", "stealing", worker_fn=_weighted_sleep)
        assert stolen == static
        assert static_stats.idle_cost_units == pytest.approx(5.0)
        assert stealing_stats.steals > 0
        assert stealing_stats.idle_cost_units < static_stats.idle_cost_units


class TestForkFaultTolerance:
    """Worker deaths are survived (stealing) or reported loudly."""

    def test_killed_worker_request_is_retried_on_survivor(self, tmp_path):
        marker = str(tmp_path / "died-once")

        def die_once(request: int) -> int:
            if request == 5:
                try:
                    # O_EXCL claim: exactly one execution of request 5 dies,
                    # the retry (and every other request) succeeds.
                    fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                    os.close(fd)
                    os.kill(os.getpid(), signal.SIGKILL)
                except FileExistsError:
                    pass
            return request * request

        backend = create_backend("process:2")
        with backend.session(die_once, dispatch="stealing") as session:
            responses = session.run(REQUESTS, costs=WEIGHTS)
            stats = session.dispatch_stats
        assert responses == [r * r for r in REQUESTS]
        assert stats.worker_deaths == 1
        assert stats.retried_tasks == 1
        assert sum(stats.tasks_per_worker) == len(REQUESTS)

    def test_all_workers_dead_raises(self):
        def always_die(request: int) -> int:
            os.kill(os.getpid(), signal.SIGKILL)
            return request  # pragma: no cover

        backend = create_backend("process:2")
        session = backend.session(always_die, dispatch="stealing")
        with pytest.raises(RuntimeError, match="parallel worker pool"):
            session.run(REQUESTS)
        session.close()

    def test_deterministic_exception_is_not_retried(self):
        def bad_request(request: int) -> int:
            if request == 3:
                raise ValueError("request 3 is always poisoned")
            return request * request

        backend = create_backend("process:2")
        session = backend.session(bad_request, dispatch="stealing")
        with pytest.raises(RuntimeError, match="poisoned"):
            session.run(REQUESTS)
        assert session.dispatch_stats.retried_tasks == 0
        assert session.dispatch_stats.worker_deaths == 0
        session.close()

    def test_retry_cap_bounds_repeated_deaths(self):
        # Request 5 dies on every execution: MAX_TASK_ATTEMPTS executions
        # are allowed, then the batch aborts instead of spinning forever.
        def die_always_on_5(request: int) -> int:
            if request == 5:
                os.kill(os.getpid(), signal.SIGKILL)
            return request * request

        backend = create_backend("process:3")
        session = backend.session(die_always_on_5, dispatch="stealing")
        with pytest.raises(RuntimeError, match="parallel worker pool"):
            session.run(REQUESTS)
        assert session.dispatch_stats.worker_deaths == MAX_TASK_ATTEMPTS
        session.close()


class TestExperimentSchedulerStealing:
    """map_cells keeps cell-order identity while balancing cell costs."""

    CELLS = build_cells(["w1", "w2"], ["o1", "o2", "o3", "o4"], base_seed=7)

    @staticmethod
    def _run_cell(cell):
        time.sleep(0.02 * WEIGHTS[cell.index])
        return (cell.index, cell.label, cell.seed)

    def _map(self, dispatch: str):
        scheduler = ExperimentScheduler(backend="thread:2", dispatch=dispatch)
        results = scheduler.map_cells(self.CELLS, self._run_cell, cell_costs=WEIGHTS)
        return results, scheduler.last_dispatch_stats

    def test_stealing_identical_and_balanced(self):
        static, static_stats = self._map("static")
        stolen, stealing_stats = self._map("stealing")
        assert stolen == static
        assert [index for index, _, _ in static] == list(range(len(self.CELLS)))
        assert static_stats is not None and stealing_stats is not None
        assert stealing_stats.steals > 0
        assert stealing_stats.idle_cost_units < static_stats.idle_cost_units

    def test_resolve_dispatch_env_and_validation(self, monkeypatch):
        monkeypatch.delenv(EXPERIMENT_DISPATCH_ENV_VAR, raising=False)
        assert resolve_experiment_dispatch(None) == "static"
        assert resolve_experiment_dispatch("stealing") == "stealing"
        monkeypatch.setenv(EXPERIMENT_DISPATCH_ENV_VAR, "stealing")
        assert resolve_experiment_dispatch(None) == "stealing"
        assert ExperimentScheduler(backend="serial").dispatch == "stealing"
        with pytest.raises(ValueError, match="dispatch"):
            resolve_experiment_dispatch("bogus")

    def test_harness_run_identical_under_stealing(self):
        def result_of(dispatch):
            harness = ExperimentHarness(cluster=ClusterSpec.paper_cluster(), scale=0.12)
            result = harness.run(
                workloads=("PJ",),
                optimizers=("Baseline", "Stubby"),
                backend="thread:2",
                dispatch=dispatch,
            )
            return result, harness.last_dispatch_stats

        static, static_stats = result_of("static")
        stolen, stealing_stats = result_of("stealing")
        assert stolen.decision_fingerprint() == static.decision_fingerprint()
        assert static_stats is not None and static_stats.dispatch == "static"
        assert stealing_stats is not None and stealing_stats.dispatch == "stealing"
        assert stealing_stats.tasks == static_stats.tasks == 2
