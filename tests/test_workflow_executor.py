"""Tests for the workflow executor: ordering, failures, and output routing."""

import pytest

from repro.common.errors import ExecutionError, WorkflowValidationError
from repro.core.plan import Plan
from repro.dfs.dataset import Dataset
from repro.dfs.filesystem import InMemoryFileSystem
from repro.mapreduce.engine import LocalEngine
from repro.mapreduce.job import simple_job
from repro.workflow.executor import WorkflowExecutor
from repro.workflow.graph import Workflow
from repro.workloads import common


def _records(n=30):
    return [{"k": f"k{i % 3}", "x": float(i), "n": 1.0} for i in range(n)]


def _diamond_workflow():
    """J_top -> d1 -> (J_left, J_right) -> (d2, d3) -> J_bottom -> d4."""
    workflow = Workflow(name="diamond")
    workflow.add_job(
        simple_job("J_top", "base", "d1", map_fn=common.key_by(("k",), value_fields=("x", "n")))
    )
    workflow.add_job(
        simple_job(
            "J_left", "d1", "d2",
            map_fn=common.key_by(("k",), value_fields=("x",)),
            reduce_fn=common.sum_reduce("x", "x"),
            group_fields=("k",),
        )
    )
    workflow.add_job(
        simple_job(
            "J_right", "d1", "d3",
            map_fn=common.key_by(("k",), value_fields=("n",)),
            reduce_fn=common.sum_reduce("n", "n"),
            group_fields=("k",),
        )
    )
    join_map = common.tagged_join_map(("k",), {"left": ("x", ("k", "x")), "right": ("n", ("k", "n"))})
    workflow.add_job(
        simple_job(
            "J_bottom", "d2", "d4",
            map_fn=join_map,
            reduce_fn=common.join_reduce("left", "right", ("k", "x", "n")),
            group_fields=("k",),
        )
    )
    # J_bottom reads both d2 and d3: extend its pipeline's inputs.
    vertex = workflow.job("J_bottom")
    pipeline = vertex.job.pipelines[0]
    pipeline.input_datasets = ("d2", "d3")
    workflow.add_dataset("d3")
    return workflow


class TestExecutionOrder:
    def test_topological_order_and_execution_order_agree(self):
        workflow = _diamond_workflow()
        result, _ = WorkflowExecutor().execute(
            workflow, base_datasets={"base": Dataset("base", records=_records())}
        )
        order = result.execution_order
        assert order.index("J_top") < order.index("J_left")
        assert order.index("J_top") < order.index("J_right")
        assert order.index("J_left") < order.index("J_bottom")
        assert order.index("J_right") < order.index("J_bottom")
        assert set(order) == {"J_top", "J_left", "J_right", "J_bottom"}

    def test_insertion_order_breaks_ties(self):
        workflow = _diamond_workflow()
        result, _ = WorkflowExecutor().execute(
            workflow, base_datasets={"base": Dataset("base", records=_records())}
        )
        # J_left and J_right are concurrent; insertion order decides.
        order = result.execution_order
        assert order.index("J_left") < order.index("J_right")


class TestFailurePropagation:
    def test_missing_base_dataset_raises(self):
        workflow = _diamond_workflow()
        with pytest.raises(ExecutionError, match="needs dataset 'base'"):
            WorkflowExecutor().execute(workflow)

    def test_job_exception_propagates(self):
        def exploding_map(key, value):
            raise RuntimeError("user code exploded")
            yield  # pragma: no cover

        workflow = Workflow(name="boom")
        workflow.add_job(simple_job("J1", "base", "out", map_fn=exploding_map))
        with pytest.raises(RuntimeError, match="user code exploded"):
            WorkflowExecutor().execute(
                workflow, base_datasets={"base": Dataset("base", records=_records())}
            )

    def test_invalid_workflow_rejected_before_running(self):
        workflow = Workflow(name="cycle")
        workflow.add_job(simple_job("J1", "a", "b", map_fn=common.key_by(("k",))))
        workflow.add_job(simple_job("J2", "b", "a", map_fn=common.key_by(("k",))))
        with pytest.raises(WorkflowValidationError):
            WorkflowExecutor().execute(workflow)

    def test_counters_for_unknown_job_raises(self):
        workflow = Workflow(name="single")
        workflow.add_job(simple_job("J1", "base", "out", map_fn=common.key_by(("k",))))
        result, _ = WorkflowExecutor().execute(
            workflow, base_datasets={"base": Dataset("base", records=_records())}
        )
        assert result.counters_for("J1") is not None
        with pytest.raises(ExecutionError, match="no execution result"):
            result.counters_for("J99")


class TestOutputRouting:
    def test_intermediates_routed_to_downstream_jobs(self):
        workflow = _diamond_workflow()
        result, fs = WorkflowExecutor().execute(
            workflow, base_datasets={"base": Dataset("base", records=_records())}
        )
        for name in ("d1", "d2", "d3", "d4"):
            assert fs.exists(name)
        # The join saw both sides: every key has sum-of-x and count.
        joined = fs.get("d4").all_records()
        assert joined
        for record in joined:
            assert set(record) == {"k", "x", "n"}

    def test_job_outputs_snapshot_collected_on_demand(self):
        workflow = _diamond_workflow()
        result, fs = WorkflowExecutor().execute(
            workflow,
            base_datasets={"base": Dataset("base", records=_records())},
            collect_outputs=True,
        )
        assert set(result.job_outputs) == set(result.execution_order)
        assert set(result.job_outputs["J_left"]) == {"d2"}
        assert result.job_outputs["J_left"]["d2"] == fs.get("d2").all_records()
        # Without the flag nothing is snapshotted.
        bare, _ = WorkflowExecutor().execute(
            workflow, base_datasets={"base": Dataset("base", records=_records())}
        )
        assert bare.job_outputs == {}

    def test_prestaged_filesystem_reused(self):
        workflow = _diamond_workflow()
        fs = InMemoryFileSystem()
        fs.put(Dataset("base", records=_records()))
        result, out_fs = WorkflowExecutor().execute(workflow, filesystem=fs)
        assert out_fs is fs
        assert result.num_jobs == 4

    def test_materialized_nonbase_dataset_staged_when_unproduced(self):
        workflow = Workflow(name="partial")
        workflow.add_job(
            simple_job("J2", "mid", "out", map_fn=common.key_by(("k",), value_fields=("x",)))
        )
        # 'mid' is normally produced upstream; here it carries materialized
        # data and has no producer, so the executor stages it directly.
        workflow.add_dataset("mid", dataset=Dataset("mid", records=_records(10)))
        result, fs = WorkflowExecutor().execute(workflow)
        assert fs.exists("out")
        assert result.job_results["J2"].per_output_records["out"] == 10

    def test_execute_plan_collects_outputs_by_default(self):
        workflow = _diamond_workflow()
        plan = Plan(workflow.copy())
        result, fs = WorkflowExecutor().execute_plan(
            plan, base_datasets={"base": Dataset("base", records=_records())}
        )
        assert set(result.job_outputs) == {"J_top", "J_left", "J_right", "J_bottom"}
        assert result.total_counters.output_records > 0

    def test_engine_level_output_collection(self):
        engine = LocalEngine(collect_outputs=True)
        fs = InMemoryFileSystem()
        fs.put(Dataset("base", records=_records()))
        job = simple_job(
            "J1", "base", "out",
            map_fn=common.key_by(("k",), value_fields=("x",)),
            reduce_fn=common.sum_reduce("x", "x"),
            group_fields=("k",),
        )
        job_result = engine.execute_job(job, fs)
        assert job_result.output_records["out"] == fs.get("out").all_records()
        # Two runs over the same input collect identical snapshots.
        fs2 = InMemoryFileSystem()
        fs2.put(Dataset("base", records=_records()))
        assert engine.execute_job(job, fs2).output_records == job_result.output_records
