"""The differential-execution equivalence battery (``-m equivalence``).

Every Stubby transformation must be a semantics-preserving rewrite: an
optimized plan executed on the same inputs must produce the same output
multisets as the unoptimized workflow.  This battery proves it three ways:

* a seeded sweep of random workflows (>= 25 seeds, scaled up via
  ``EQUIVALENCE_SEEDS``) through all three optimizer variants;
* every transformation applied *in isolation* — bypassing the cost-based
  search, so e.g. horizontal packings that the optimizer would decline on
  cost grounds are still executed and checked;
* every canned evaluation workload through all three variants.

A deliberately broken transformation (mutated in-test to drop records) must
be *caught*, with the divergence bisected to the guilty unit and reported at
job/record granularity — the harness is only trustworthy if it fails loudly.

Reproducing a failure: every assertion message embeds ``report.describe()``
and the workflow name carries the seed (``rand-<seed>``);
``RandomWorkflowGenerator().generate(<seed>)`` rebuilds the exact workflow
and datasets.  See ``docs/verification.md``.
"""

from dataclasses import replace as dataclass_replace

import pytest

from repro.common.hashing import stable_hash
from repro.core.optimizer import StubbyOptimizer
from repro.core.transformations import (
    HorizontalPacking,
    InterJobVerticalPacking,
    IntraJobVerticalPacking,
    PartitionFunctionTransformation,
)
from repro.profiler import Profiler
from repro.workloads import WORKLOAD_ORDER, build_workload
from tests.conftest import equivalence_seeds

SEEDS = equivalence_seeds()

VARIANTS = (
    ("Stubby", lambda cluster: StubbyOptimizer(cluster)),
    ("Vertical", StubbyOptimizer.vertical_only),
    ("Horizontal", StubbyOptimizer.horizontal_only),
)

TRANSFORMATIONS = (
    IntraJobVerticalPacking(),
    InterJobVerticalPacking(),
    PartitionFunctionTransformation(),
    HorizontalPacking(),
)


def _profiled_workload(abbr, scale=0.12):
    workload = build_workload(abbr, scale=scale)
    Profiler().profile_workflow(workload.workflow, workload.base_datasets)
    return workload


# ---------------------------------------------------------------------------
# Random-workflow sweep: all three variants on every seed
# ---------------------------------------------------------------------------


@pytest.mark.equivalence
@pytest.mark.parametrize("seed", SEEDS)
def test_random_workflow_equivalence(seed, cluster, workflow_generator, differential):
    generated = workflow_generator.generate(seed)
    for variant_name, factory in VARIANTS:
        result = factory(cluster).optimize(generated.plan)
        report = differential.verify_result(
            generated.workflow, generated.base_datasets, result
        )
        assert report.equivalent, f"[seed={seed}, {variant_name}]\n{report.describe()}"


@pytest.mark.equivalence
@pytest.mark.parametrize("seed", SEEDS[:6])
def test_diamond_shared_sink_equivalence(seed, cluster, workflow_generator, differential):
    """The fixed diamond-fan-in / shared-scan-sink shape stays equivalent.

    The shape combines a multi-input (fan-in) pipeline, two shared-scan
    packing opportunities at different depths, and vertical chains around
    the fan-in — corners the random DAGs rarely hit all at once.
    """
    generated = workflow_generator.diamond_shared_sink(seed)
    assert generated.workflow.num_jobs == 5
    for variant_name, factory in VARIANTS:
        result = factory(cluster).optimize(generated.plan)
        report = differential.verify_result(
            generated.workflow, generated.base_datasets, result
        )
        assert report.equivalent, f"[diamond seed={seed}, {variant_name}]\n{report.describe()}"


@pytest.mark.equivalence
def test_diamond_shared_sink_is_deterministic(workflow_generator):
    first = workflow_generator.diamond_shared_sink(SEEDS[0])
    second = workflow_generator.diamond_shared_sink(SEEDS[0])
    assert [v.name for v in first.workflow.jobs] == [v.name for v in second.workflow.jobs]
    for name, dataset in first.base_datasets.items():
        assert dataset.all_records() == second.base_datasets[name].all_records()
    # The fan-in job really reads both diamond branches through one pipeline.
    fan_in = first.workflow.job(f"D{SEEDS[0]}_J2")
    assert len(fan_in.job.pipelines) == 1
    assert len(fan_in.job.pipelines[0].input_datasets) == 2


@pytest.mark.equivalence
def test_generator_is_deterministic(workflow_generator):
    first = workflow_generator.generate(SEEDS[0])
    second = workflow_generator.generate(SEEDS[0])
    assert [v.name for v in first.workflow.jobs] == [v.name for v in second.workflow.jobs]
    for name, dataset in first.base_datasets.items():
        assert dataset.all_records() == second.base_datasets[name].all_records()


@pytest.mark.equivalence
def test_generator_respects_structure_knobs(workflow_generator):
    shallow = workflow_generator.with_config(
        max_jobs=3, max_depth=1, annotation_density=0.5, profile=False
    )
    for seed in SEEDS[:5]:
        generated = shallow.generate(seed)
        assert generated.workflow.num_jobs <= 3
        # depth 1: every job reads a base dataset directly
        for vertex in generated.workflow.jobs:
            for name in vertex.job.input_datasets:
                assert name in generated.base_datasets


# ---------------------------------------------------------------------------
# Each transformation in isolation (bypassing the cost-based search)
# ---------------------------------------------------------------------------


@pytest.mark.equivalence
@pytest.mark.parametrize(
    "transformation", TRANSFORMATIONS, ids=lambda t: t.name
)
@pytest.mark.parametrize("seed", SEEDS[:8])
def test_single_transformation_equivalence(seed, transformation, workflow_generator, differential):
    generated = workflow_generator.generate(seed)
    plan = generated.plan
    applications = transformation.find_applications(plan, tuple(plan.job_names))
    for application in applications[:4]:
        transformed = transformation.apply(plan, application)
        report = differential.compare(
            generated.workflow, transformed, generated.base_datasets
        )
        assert report.equivalent, (
            f"[seed={seed}, {transformation.name} on {application.target_jobs}]\n"
            f"{report.describe()}"
        )


@pytest.mark.equivalence
@pytest.mark.parametrize(
    "transformation", TRANSFORMATIONS, ids=lambda t: t.name
)
def test_single_transformation_equivalence_on_ir(transformation, differential):
    workload = _profiled_workload("IR")
    plan = workload.plan
    applications = transformation.find_applications(plan, tuple(plan.job_names))
    for application in applications:
        transformed = transformation.apply(plan, application)
        report = differential.compare(workload.workflow, transformed, workload.base_datasets)
        assert report.equivalent, (
            f"[IR, {transformation.name} on {application.target_jobs}]\n{report.describe()}"
        )


# ---------------------------------------------------------------------------
# Canned evaluation workloads through all three variants
# ---------------------------------------------------------------------------


@pytest.mark.equivalence
@pytest.mark.parametrize("abbr", WORKLOAD_ORDER)
def test_canned_workload_equivalence(abbr, cluster, differential):
    workload = _profiled_workload(abbr)
    for variant_name, factory in VARIANTS:
        result = factory(cluster).optimize(workload.plan)
        report = differential.verify_result(
            workload.workflow, workload.base_datasets, result
        )
        assert report.equivalent, f"[{abbr}, {variant_name}]\n{report.describe()}"


# ---------------------------------------------------------------------------
# The harness must catch a broken transformation, with diagnostics
# ---------------------------------------------------------------------------


class _LossyIntraJobPacking(IntraJobVerticalPacking):
    """Intra-job packing deliberately broken to drop ~20% of packed records."""

    def apply(self, plan, application):
        new_plan = super().apply(plan, application)
        consumer = new_plan.workflow.job(application.target_jobs[-1])
        pipeline = consumer.job.pipelines[0]
        first = pipeline.map_ops[0]
        inner = first.fn

        def lossy(key, value, _inner=inner):
            for out_key, out_value in _inner(key, value):
                material = str(sorted(str(item) for item in out_value.items()))
                if stable_hash((material,)) % 5 == 0:
                    continue  # silently lose the record
                yield out_key, out_value

        pipeline.map_ops[0] = dataclass_replace(first, fn=lossy)
        return new_plan


@pytest.mark.equivalence
def test_broken_transformation_is_caught_with_job_level_report(cluster, differential):
    workload = _profiled_workload("IR", scale=0.15)
    optimizer = StubbyOptimizer(cluster)
    optimizer.search.vertical_transformations[0] = _LossyIntraJobPacking()

    result = optimizer.optimize(workload.plan)
    assert "intra-job-vertical-packing" in result.transformations_applied

    report = differential.verify_result(workload.workflow, workload.base_datasets, result)
    assert not report.equivalent

    # Dataset- and job-level diagnostics.
    divergence = report.divergences[0]
    assert divergence.dataset == "ir_tfidf"
    assert divergence.reference_job == "IR_J3"
    assert divergence.missing_count > 0
    assert divergence.missing_sample  # record-level samples included

    # Bisection names the guilty unit and transformation.
    assert report.culprit is not None
    assert "intra-job-vertical-packing" in report.culprit.transformations
    assert report.culprit.phase == "vertical"

    # And the human-readable report carries all of it.
    text = report.describe()
    assert "NOT equivalent" in text
    assert "ir_tfidf" in text
    assert "intra-job-vertical-packing" in text


@pytest.mark.equivalence
def test_broken_transformation_caught_on_random_workflows(cluster, workflow_generator, differential):
    """The lossy packing is also caught on generated workflows (when chosen)."""
    caught = 0
    for seed in SEEDS[:10]:
        generated = workflow_generator.generate(seed)
        optimizer = StubbyOptimizer.vertical_only(cluster)
        optimizer.search.vertical_transformations[0] = _LossyIntraJobPacking()
        result = optimizer.optimize(generated.plan)
        if "intra-job-vertical-packing" not in result.transformations_applied:
            continue
        report = differential.verify_result(
            generated.workflow, generated.base_datasets, result
        )
        if not report.equivalent:
            caught += 1
            assert report.culprit is not None
    assert caught > 0, "lossy packing never caught across the seed sample"


# ---------------------------------------------------------------------------
# Harness plumbing that must hold for the reports to be trustworthy
# ---------------------------------------------------------------------------


@pytest.mark.equivalence
def test_unit_reports_carry_before_after_plans(cluster):
    workload = _profiled_workload("IR", scale=0.15)
    result = StubbyOptimizer(cluster).optimize(workload.plan)
    assert result.unit_reports
    for unit_report in result.unit_reports:
        assert unit_report.plan_before is not None
        assert unit_report.plan_after is not None
    # The last after-plan is structurally the final plan.
    assert result.unit_reports[-1].plan_after.signature() == result.plan.signature()


@pytest.mark.equivalence
def test_identical_plans_report_equivalent(differential, workflow_generator):
    generated = workflow_generator.generate(SEEDS[0])
    report = differential.compare(
        generated.workflow, generated.workflow.copy(), generated.base_datasets
    )
    assert report.equivalent
    assert report.compared_datasets
    assert "equivalent" in report.describe()


@pytest.mark.equivalence
def test_candidate_execution_failure_is_reported(differential, workflow_generator):
    generated = workflow_generator.generate(SEEDS[0])
    broken = generated.workflow.copy()
    # Remove a producer so a downstream input is missing at execution time.
    victim = None
    for vertex in broken.jobs:
        if broken.consumer_jobs(vertex.name):
            victim = vertex.name
            break
    if victim is None:
        pytest.skip("generated workflow has no internal edges for this seed")
    broken.remove_job(victim)
    report = differential.compare(generated.workflow, broken, generated.base_datasets)
    assert not report.equivalent
    assert report.error is not None or report.divergences
