"""Unit-level decision memoization: identity, invalidation, persistence.

Three contracts from ``docs/search.md``'s decision-memoization section:

* **Replay identity** — with the decision cache enabled (cold or warm, any
  backend) the optimizer's final plans are bit-identical to a cache-disabled
  run: same ``signature()``, same per-job configurations, same recorded
  history.  A warm run additionally skips the search (one final what-if
  query, zero RRS evaluations).
* **Invalidation** — changing *any* input of the decision key (a profile, a
  job or dataset annotation, the cluster, an RRS knob, the search seed, the
  transformation set, the cost-model version) produces a cache *miss*, never
  a stale hit.
* **Persistence** — a persisted decision file warm-starts a later cache
  bit-identically, and is rejected wholesale — without raising — when
  corrupt, truncated, or stamped with a different format/model/cluster
  (mirroring ``tests/test_cache_persistence.py`` for the cost cache).

The RRS sample-dedup and composed-combination-dedup satellites are covered
here too: both must provably reduce objective calls without moving the
argmin.
"""

import dataclasses
import os
import pickle

import pytest

from repro.cluster import ClusterSpec
from repro.core.decision_cache import (
    DECISION_CACHE_FORMAT_VERSION,
    DecisionCache,
    decision_cache_enabled,
    ensure_decision_cache,
    resolve_decision_cache_path,
)
from repro.core.optimization_unit import OptimizationUnit, OptimizationUnitGenerator
from repro.core.optimizer import StubbyOptimizer
from repro.core.rrs import RecursiveRandomSearch
from repro.core.search import StubbySearch, SubplanRecord
from repro.core.transformations import (
    HorizontalPacking,
    InterJobVerticalPacking,
    IntraJobVerticalPacking,
    PartitionFunctionTransformation,
)
from repro.experiments.harness import ExperimentHarness
from repro.mapreduce.config import ConfigDimension, ConfigurationSpace
from repro.profiler import Profiler
from repro.whatif import model as whatif_model
from repro.workloads import build_workload

CLUSTER = ClusterSpec.paper_cluster()

fingerprint = StubbySearch._plan_decision_fingerprint


def _profiled(abbr="IR", scale=0.05):
    workload = build_workload(abbr, scale=scale)
    Profiler().profile_workflow(workload.workflow, workload.base_datasets)
    return workload


def _optimizer(**kwargs):
    return StubbyOptimizer(CLUSTER, **kwargs)


def _vertical_transformations():
    return [
        IntraJobVerticalPacking(),
        InterJobVerticalPacking(),
        PartitionFunctionTransformation(),
    ]


def _search(**kwargs):
    return StubbySearch(
        cluster=kwargs.pop("cluster", CLUSTER),
        vertical_transformations=_vertical_transformations(),
        horizontal_transformations=[HorizontalPacking(), PartitionFunctionTransformation()],
        **kwargs,
    )


def _first_unit_key(search, plan):
    generator = OptimizationUnitGenerator()
    unit = generator.next_unit(plan)
    subunits = generator.independent_subunits(plan, unit)
    return search._decision_key(plan, subunits, search.vertical_transformations, "vertical")


class TestReplayIdentity:
    def test_warm_replay_is_bit_identical_and_skips_the_search(self):
        workload = _profiled()
        optimizer = _optimizer(decision_cache=DecisionCache(CLUSTER, enabled=True))
        cold = optimizer.optimize(workload.plan)
        assert cold.unit_decision_hits == 0
        assert cold.unit_decision_misses > 0

        warm = optimizer.optimize(workload.plan)
        assert warm.unit_decision_hits == cold.unit_decision_misses
        assert warm.unit_decision_misses == 0
        # Every unit replayed: the only what-if query left is the final
        # whole-plan estimate, and no candidate ran RRS.
        assert warm.whatif_queries == 1
        assert all(r.rrs_evaluations == 0 for rep in warm.unit_reports for r in rep.subplans)

        # The hard contract: bit-identical plans, cold vs warm vs disabled.
        disabled = _optimizer(decision_cache=DecisionCache(CLUSTER, enabled=False))
        off = disabled.optimize(workload.plan)
        assert off.unit_decision_hits == 0 and off.unit_decision_misses == 0
        assert fingerprint(cold.plan) == fingerprint(warm.plan) == fingerprint(off.plan)
        assert cold.plan.signature() == warm.plan.signature()
        assert cold.estimated_cost_s == warm.estimated_cost_s == off.estimated_cost_s
        assert cold.transformations_applied == warm.transformations_applied
        assert warm.transformations_applied == off.transformations_applied

    @pytest.mark.parametrize("backend", ["thread:2", "process:2"])
    def test_identity_on_parallel_search_backends(self, backend):
        workload = _profiled()
        reference = _optimizer(decision_cache=DecisionCache(CLUSTER, enabled=False))
        expected = fingerprint(reference.optimize(workload.plan).plan)

        optimizer = _optimizer(
            decision_cache=DecisionCache(CLUSTER, enabled=True), backend=backend
        )
        cold = optimizer.optimize(workload.plan)
        warm = optimizer.optimize(workload.plan)
        assert warm.unit_decision_hits == cold.unit_decision_misses > 0
        assert fingerprint(cold.plan) == expected
        assert fingerprint(warm.plan) == expected

    def test_verify_hits_mode_asserts_replay_equality(self):
        workload = _profiled()
        cache = DecisionCache(CLUSTER, enabled=True, verify_hits=True)
        optimizer = _optimizer(decision_cache=cache)
        optimizer.optimize(workload.plan)
        # Every hit re-runs the full search and raises on any divergence.
        warm = optimizer.optimize(workload.plan)
        assert warm.unit_decision_hits > 0

    def test_replay_decision_divergence_is_detected(self):
        workload = _profiled()
        cache = DecisionCache(CLUSTER, enabled=True, verify_hits=True)
        optimizer = _optimizer(decision_cache=cache)
        optimizer.optimize(workload.plan)
        # Corrupt one recorded decision in place: verify mode must crash
        # rather than let a wrong replay masquerade as a search result.
        shard_rows = [row for rows in cache._cache.shard_items() for row in rows]
        key, decision, origin = next(
            row for row in shard_rows if any(c.applications for c in row[1].choices)
        )
        broken = dataclasses.replace(
            decision,
            choices=tuple(
                dataclasses.replace(
                    choice, applications=(), transformations=(), best_settings=()
                )
                for choice in decision.choices
            ),
        )
        cache.store(key, broken, origin=origin)
        with pytest.raises(RuntimeError, match="replay diverged"):
            optimizer.optimize(workload.plan)

    def test_shared_cache_hits_across_optimizer_instances(self):
        workload = _profiled()
        cache = DecisionCache(CLUSTER, enabled=True)
        first = _optimizer(decision_cache=cache).optimize(workload.plan)
        second = _optimizer(decision_cache=cache).optimize(workload.plan)
        assert second.unit_decision_hits == first.unit_decision_misses > 0
        assert fingerprint(first.plan) == fingerprint(second.plan)


class TestObservability:
    def test_orchestrated_runs_share_and_attribute_decisions(self):
        harness = ExperimentHarness(scale=0.05, experiment_backend="serial")
        first = harness.run(workloads=["IR"], optimizers=("Baseline", "Stubby"))
        second = harness.run(workloads=["IR"], optimizers=("Baseline", "Stubby"))

        assert first.decision_fingerprint() == second.decision_fingerprint()
        assert first.unit_decision_hits == 0
        assert first.decision_stats.stores > 0
        # The second run replays every unit the first run solved; the hits
        # are cross-origin because run tokens differ between run() calls.
        assert second.unit_decision_hits > 0
        assert second.cross_origin_decision_hits == second.unit_decision_hits
        assert second.decision_stats.decision_hits == second.unit_decision_hits
        assert second.decision_stats.hit_rate == 1.0

        stubby = second.comparison("IR").runs["Stubby"]
        assert stubby.unit_decision_hits > 0
        assert stubby.unit_decision_misses == 0
        # Decision counters are observability, not results: fingerprints
        # exclude them by design (warmth must never change a decision).
        assert "unit_decision" not in repr(stubby.decision_fingerprint())

    def test_process_backend_merges_worker_decisions(self):
        harness = ExperimentHarness(scale=0.05, experiment_backend="process:2")
        first = harness.run(workloads=["IR"], optimizers=("Stubby", "Vertical"))
        assert first.decision_stats.stores > 0
        # Decisions recorded inside forked cell workers merged on join: a
        # second run on the same harness replays them without re-searching.
        second = harness.run(workloads=["IR"], optimizers=("Stubby", "Vertical"))
        assert second.unit_decision_hits > 0
        assert second.decision_stats.decision_misses == 0
        assert first.decision_fingerprint() == second.decision_fingerprint()

    def test_compare_isolates_optimizers_from_each_other(self):
        harness = ExperimentHarness(scale=0.05)
        comparison = harness.compare("IR", optimizers=("Stubby", "Vertical"))
        # compare() invalidates the decision cache per optimizer (standalone
        # Figure 13 timings), so nothing is served warm within one call.
        for run in comparison.runs.values():
            assert run.unit_decision_hits == 0


class TestInvalidation:
    def test_identical_content_produces_identical_keys(self):
        workload = _profiled()
        search = _search()
        assert _first_unit_key(search, workload.plan) == _first_unit_key(
            search, workload.plan
        )
        # Key equality is content-based: an independently built, identically
        # profiled workload produces the same key object-identity aside.
        twin = _profiled()
        assert _first_unit_key(search, twin.plan) == _first_unit_key(search, workload.plan)

    def test_profile_change_changes_key(self):
        workload = _profiled()
        search = _search()
        before = _first_unit_key(search, workload.plan)
        vertex = workload.plan.workflow.jobs[0]
        profile = vertex.annotations.profile
        vertex.annotations.profile = dataclasses.replace(
            profile, map_cpu_cost_per_record=profile.map_cpu_cost_per_record * 2.0
        )
        assert _first_unit_key(search, workload.plan) != before

    def test_job_annotation_change_changes_key(self):
        workload = _profiled()
        search = _search()
        before = _first_unit_key(search, workload.plan)
        workload.plan.workflow.jobs[0].annotations.conditions["probe"] = 1
        assert _first_unit_key(search, workload.plan) != before

    def test_dataset_annotation_change_changes_key(self):
        workload = _profiled()
        search = _search()
        before = _first_unit_key(search, workload.plan)
        annotated = next(
            dv for dv in workload.plan.workflow.datasets if dv.annotation is not None
        )
        annotated.annotation = dataclasses.replace(
            annotated.annotation, size_bytes=annotated.annotation.size_bytes * 2
        )
        assert _first_unit_key(search, workload.plan) != before

    def test_cluster_change_changes_key_and_sharing_is_refused(self):
        workload = _profiled()
        other_cluster = dataclasses.replace(CLUSTER, num_nodes=CLUSTER.num_nodes + 1)
        before = _first_unit_key(_search(), workload.plan)
        after = _first_unit_key(_search(cluster=other_cluster), workload.plan)
        assert before != after
        with pytest.raises(ValueError, match="different ClusterSpec"):
            ensure_decision_cache(other_cluster, DecisionCache(CLUSTER))

    def test_rrs_knobs_change_key(self):
        workload = _profiled()
        base = dict(exploration_samples=10, exploitation_samples=8, restarts=1, seed=17)
        before = _first_unit_key(
            _search(rrs=RecursiveRandomSearch(**base)), workload.plan
        )
        for change in (
            {"seed": 18},
            {"exploration_samples": 11},
            {"exploitation_samples": 9},
            {"restarts": 2},
        ):
            rrs = RecursiveRandomSearch(**{**base, **change})
            assert _first_unit_key(_search(rrs=rrs), workload.plan) != before, change

    def test_search_seed_and_configuration_flag_change_key(self):
        workload = _profiled()
        before = _first_unit_key(_search(seed=17), workload.plan)
        assert _first_unit_key(_search(seed=18), workload.plan) != before
        assert (
            _first_unit_key(_search(optimize_configurations=False), workload.plan)
            != before
        )

    def test_transformation_set_changes_key(self):
        workload = _profiled()
        search = _search()
        generator = OptimizationUnitGenerator()
        unit = generator.next_unit(workload.plan)
        subunits = generator.independent_subunits(workload.plan, unit)
        full = search._decision_key(
            workload.plan, subunits, search.vertical_transformations, "vertical"
        )
        reduced = search._decision_key(
            workload.plan, subunits, search.vertical_transformations[:-1], "vertical"
        )
        options_changed = search._decision_key(
            workload.plan,
            subunits,
            [HorizontalPacking(allow_extended=False), PartitionFunctionTransformation()],
            "vertical",
        )
        baseline_horizontal = search._decision_key(
            workload.plan,
            subunits,
            [HorizontalPacking(allow_extended=True), PartitionFunctionTransformation()],
            "vertical",
        )
        assert len({full, reduced, options_changed, baseline_horizontal}) == 4

    def test_cost_model_version_changes_key(self, monkeypatch):
        workload = _profiled()
        search = _search()
        before = _first_unit_key(search, workload.plan)
        monkeypatch.setattr(
            whatif_model, "COST_MODEL_VERSION", whatif_model.COST_MODEL_VERSION + 1
        )
        assert _first_unit_key(search, workload.plan) != before

    def test_changed_seed_never_serves_a_stale_decision(self):
        workload = _profiled()
        cache = DecisionCache(CLUSTER, enabled=True)
        _optimizer(decision_cache=cache, seed=17).optimize(workload.plan)
        rerun = _optimizer(decision_cache=cache, seed=18).optimize(workload.plan)
        assert rerun.unit_decision_hits == 0
        assert rerun.unit_decision_misses > 0


class TestPersistence:
    def _warm_cache(self, workload, path=None):
        cache = DecisionCache(CLUSTER, enabled=True, cache_path=path)
        result = _optimizer(decision_cache=cache).optimize(workload.plan)
        return cache, result

    def test_round_trip_replays_bit_identically(self, tmp_path):
        workload = _profiled()
        path = str(tmp_path / "decisions.cache")
        cache, cold = self._warm_cache(workload)
        written = cache.save_cache(path)
        assert written == cache.cache_size > 0

        warmed = DecisionCache(CLUSTER, enabled=True, cache_path=path)
        assert warmed.last_load is not None and warmed.last_load.loaded
        assert warmed.last_load.entries == written
        result = _optimizer(decision_cache=warmed).optimize(workload.plan)
        assert result.unit_decision_hits == cold.unit_decision_misses
        # Disk-warm hits are cross-origin: the recording run's origin label
        # (None here) is not this process's lookup origin only when origins
        # differ — entries keep the origin they were stored under, so a
        # same-origin reload still replays identically.
        assert fingerprint(result.plan) == fingerprint(cold.plan)

    def test_save_and_load_require_a_path(self):
        cache = DecisionCache(CLUSTER, enabled=True)
        with pytest.raises(ValueError, match="no decision cache path"):
            cache.save_cache()
        with pytest.raises(ValueError, match="no decision cache path"):
            cache.load_cache()

    def test_missing_file_reports_cleanly(self, tmp_path):
        cache = DecisionCache(CLUSTER, enabled=True, cache_path=str(tmp_path / "absent"))
        assert cache.last_load is not None
        assert not cache.last_load.loaded
        assert "no cache file" in cache.last_load.reason

    def test_corrupt_file_is_rejected_quietly(self, tmp_path):
        path = tmp_path / "decisions.cache"
        path.write_bytes(b"this is not a pickle")
        cache = DecisionCache(CLUSTER, enabled=True, cache_path=str(path))
        assert not cache.last_load.loaded
        assert "unreadable" in cache.last_load.reason
        assert cache.cache_size == 0

    def test_truncated_file_is_rejected_quietly(self, tmp_path):
        workload = _profiled()
        path = str(tmp_path / "decisions.cache")
        cache, _ = self._warm_cache(workload)
        cache.save_cache(path)
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) // 2])
        reloaded = DecisionCache(CLUSTER, enabled=True, cache_path=path)
        assert not reloaded.last_load.loaded
        assert "unreadable" in reloaded.last_load.reason

    def _rewrite_payload(self, path, **overrides):
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload.update(overrides)
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)

    def test_format_version_mismatch_is_rejected(self, tmp_path):
        workload = _profiled()
        path = str(tmp_path / "decisions.cache")
        cache, _ = self._warm_cache(workload)
        cache.save_cache(path)
        self._rewrite_payload(path, format_version=DECISION_CACHE_FORMAT_VERSION + 1)
        reloaded = DecisionCache(CLUSTER, enabled=True, cache_path=path)
        assert not reloaded.last_load.loaded
        assert "format version" in reloaded.last_load.reason

    def test_model_version_mismatch_is_rejected(self, tmp_path, monkeypatch):
        workload = _profiled()
        path = str(tmp_path / "decisions.cache")
        cache, _ = self._warm_cache(workload)
        cache.save_cache(path)
        monkeypatch.setattr(
            whatif_model, "COST_MODEL_VERSION", whatif_model.COST_MODEL_VERSION + 1
        )
        reloaded = DecisionCache(CLUSTER, enabled=True, cache_path=path)
        assert not reloaded.last_load.loaded
        assert "model version" in reloaded.last_load.reason

    def test_cluster_mismatch_is_rejected(self, tmp_path):
        workload = _profiled()
        path = str(tmp_path / "decisions.cache")
        cache, _ = self._warm_cache(workload)
        cache.save_cache(path)
        other = dataclasses.replace(CLUSTER, num_nodes=CLUSTER.num_nodes + 1)
        reloaded = DecisionCache(other, enabled=True, cache_path=path)
        assert not reloaded.last_load.loaded
        assert "different ClusterSpec" in reloaded.last_load.reason

    def test_malformed_entries_are_rejected_wholesale(self, tmp_path):
        workload = _profiled()
        path = str(tmp_path / "decisions.cache")
        cache, _ = self._warm_cache(workload)
        cache.save_cache(path)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["entries"].append(("bad row",))
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        reloaded = DecisionCache(CLUSTER, enabled=True, cache_path=path)
        assert not reloaded.last_load.loaded
        assert "malformed cache entries" in reloaded.last_load.reason
        assert reloaded.cache_size == 0

    def test_env_var_controls_path_and_kill_switch(self, monkeypatch, tmp_path):
        env_path = str(tmp_path / "env-decisions.cache")
        monkeypatch.setenv("STUBBY_DECISION_CACHE", env_path)
        assert resolve_decision_cache_path(None) == env_path
        assert resolve_decision_cache_path("explicit") == "explicit"
        assert resolve_decision_cache_path("") is None

        monkeypatch.setenv("STUBBY_DECISION_CACHE_ENABLED", "0")
        assert decision_cache_enabled() is False
        cache = DecisionCache(CLUSTER)
        assert not cache.enabled
        assert cache.lookup(("anything",)) is None
        cache.store(("anything",), None)
        assert cache.cache_size == 0
        monkeypatch.setenv("STUBBY_DECISION_CACHE_ENABLED", "1")
        assert decision_cache_enabled() is True

    def test_harness_persists_and_warm_starts_decisions(self, tmp_path):
        path = str(tmp_path / "decisions.cache")
        first = ExperimentHarness(scale=0.05, decision_cache_path=path)
        result1 = first.run(workloads=["IR"], optimizers=("Stubby",))
        assert os.path.exists(path)
        assert result1.decision_cache_path == path

        second = ExperimentHarness(scale=0.05, decision_cache_path=path)
        assert second.decisions.last_load.loaded
        result2 = second.run(workloads=["IR"], optimizers=("Stubby",))
        assert result2.unit_decision_hits > 0
        assert result2.cross_origin_decision_hits == result2.unit_decision_hits
        assert result1.decision_fingerprint() == result2.decision_fingerprint()


class TestRRSSampleDedup:
    def test_duplicates_are_not_dispatched_and_argmin_is_unchanged(self):
        space = ConfigurationSpace(
            dimensions=[ConfigDimension("x", "int", 1, 3)]
        )
        calls = []

        def objective(point):
            calls.append(dict(point))
            return (point["x"] - 3) ** 2

        rrs = RecursiveRandomSearch(
            exploration_samples=12, exploitation_samples=10, restarts=2, seed=7
        )
        result = rrs.search(space, objective=objective)
        # A 3-value space sampled dozens of times must collide constantly...
        assert result.duplicate_points > 0
        # ...and every dispatched point is unique.
        assert len(calls) == result.evaluations == len(result.trajectory)
        keys = [tuple(sorted(p.items())) for p in calls]
        assert len(keys) == len(set(keys))
        # The argmin is exact: the global optimum of a tiny space.
        assert result.best_point == {"x": 3}
        assert result.best_value == 0

    def test_initial_point_counts_once(self):
        space = ConfigurationSpace(dimensions=[ConfigDimension("x", "int", 1, 2)])
        rrs = RecursiveRandomSearch(
            exploration_samples=5, exploitation_samples=4, restarts=1, seed=3
        )
        result = rrs.search(
            space, objective=lambda p: float(p["x"]), initial_point={"x": 1}
        )
        # The initial point is drawn again during exploration with high
        # probability; either way evaluations and trajectory stay in lock
        # step and the total drawn is conserved.
        assert result.evaluations == len(result.trajectory)
        assert result.best_point == {"x": 1}

    def test_batch_and_pointwise_agree_with_dedup(self):
        space = ConfigurationSpace(
            dimensions=[
                ConfigDimension("x", "int", 1, 4),
                ConfigDimension("flag", "bool"),
            ]
        )

        def value(point):
            return point["x"] + (0.5 if point["flag"] else 0.0)

        rrs = RecursiveRandomSearch(
            exploration_samples=8, exploitation_samples=6, restarts=2, seed=11
        )
        pointwise = rrs.search(space, objective=value)
        batched = rrs.search(space, objective_batch=lambda pts: [value(p) for p in pts])
        assert pointwise.best_point == batched.best_point
        assert pointwise.best_value == batched.best_value
        assert pointwise.trajectory == batched.trajectory
        assert pointwise.duplicate_points == batched.duplicate_points


class TestComposedCombinationDedup:
    def _composed(self, per_subunit):
        workload = _profiled()
        search = _search()
        plan = workload.plan
        subunits = [
            OptimizationUnit(producers=("a",), consumers=()),
            OptimizationUnit(producers=("b",), consumers=()),
        ]
        records = [
            [
                SubplanRecord(
                    plan=plan.copy(),
                    transformations=(),
                    estimated_cost=cost,
                    best_settings=settings,
                )
                for cost, settings in candidates
            ]
            for candidates in per_subunit
        ]
        _, reports = search._choose_composed(
            plan, subunits, records, search.vertical_transformations, "vertical"
        )
        return reports

    def test_identical_compositions_are_costed_once(self):
        # Sub-unit 0 carries two content-identical candidates (same plan
        # signature, no settings): combos (0,0) and (1,0) denote the same
        # composed plan and must share one what-if query.
        reports = self._composed([[(100.0, {}), (100.0, {})], [(50.0, {})]])
        assert reports[0].composition_combinations == 2
        assert reports[0].composition_queries == 1
        # Ties keep the lexicographically smallest index vector.
        assert reports[0].chosen_index == 0
        assert reports[1].chosen_index == 0

    def test_settings_differences_defeat_the_dedup(self, request):
        workload = _profiled()
        job = workload.plan.workflow.jobs[0].name
        reports = self._composed(
            [
                [
                    (100.0, {job: {"split_size_mb": 64}}),
                    (100.0, {job: {"split_size_mb": 128}}),
                ],
                [(50.0, {})],
            ]
        )
        # Same structural signature but different chosen settings → different
        # content keys → both combos are costed.
        assert reports[0].composition_combinations == 2
        assert reports[0].composition_queries == 2
