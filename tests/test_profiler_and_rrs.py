"""Tests for the profiler and Recursive Random Search."""

import pytest

from repro.common.rng import DeterministicRNG
from repro.core.rrs import RecursiveRandomSearch
from repro.mapreduce.config import ConfigDimension, ConfigurationSpace
from repro.profiler import Profiler
from repro.workloads import build_workload


class TestProfiler:
    @pytest.fixture(scope="class")
    def ir_workload(self):
        return build_workload("IR", scale=0.15)

    def test_profiles_every_job(self, ir_workload):
        result = Profiler().profile_workflow(
            ir_workload.workflow.copy(), ir_workload.base_datasets, attach=False
        )
        assert set(result.job_profiles) == {"IR_J1", "IR_J2", "IR_J3"}
        assert "corpus" in result.dataset_annotations

    def test_attach_sets_annotations(self, ir_workload):
        workflow = ir_workload.workflow.copy()
        Profiler().profile_workflow(workflow, ir_workload.base_datasets, attach=True)
        assert all(vertex.annotations.has_profile for vertex in workflow.jobs)
        assert workflow.dataset("corpus").annotation is not None

    def test_operator_profiles_and_selectivities(self, ir_workload):
        result = Profiler().profile_workflow(
            ir_workload.workflow.copy(), ir_workload.base_datasets, attach=False
        )
        j1 = result.job_profiles["IR_J1"]
        assert "IR_J1.map" in j1.operator_profiles
        assert "IR_J1.reduce" in j1.operator_profiles
        # The TF job's reduce aggregates (doc, word) groups: selectivity < 1.
        assert j1.operator_profiles["IR_J1.reduce"].selectivity < 1.0
        assert j1.cardinality(("doc", "word")) > 0

    def test_dataset_annotation_contents(self, ir_workload):
        annotation = Profiler().annotate_dataset(ir_workload.base_datasets["corpus"])
        assert annotation.partition_kind == "hash"
        assert annotation.partition_fields == ("doc",)
        assert annotation.size_bytes > 0
        assert "doc" in (annotation.schema or ())

    def test_noise_changes_statistics(self, ir_workload):
        clean = Profiler(noise=0.0).profile_workflow(
            ir_workload.workflow.copy(), ir_workload.base_datasets, attach=False
        )
        noisy = Profiler(noise=0.3, seed=5).profile_workflow(
            ir_workload.workflow.copy(), ir_workload.base_datasets, attach=False
        )
        assert (
            noisy.job_profiles["IR_J1"].operator_profiles["IR_J1.map"].selectivity
            != clean.job_profiles["IR_J1"].operator_profiles["IR_J1.map"].selectivity
        )

    def test_sampling_reduces_profiled_records(self, ir_workload):
        full = Profiler(sample_fraction=1.0).profile_workflow(
            ir_workload.workflow.copy(), ir_workload.base_datasets, attach=False
        )
        sampled = Profiler(sample_fraction=0.3).profile_workflow(
            ir_workload.workflow.copy(), ir_workload.base_datasets, attach=False
        )
        assert sampled.profiled_records < full.profiled_records

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Profiler(sample_fraction=0.0)
        with pytest.raises(ValueError):
            Profiler(noise=-0.1)


class TestRecursiveRandomSearch:
    def _space(self):
        return ConfigurationSpace(
            dimensions=[
                ConfigDimension("x", "int", 0, 100),
                ConfigDimension("y", "int", 0, 100),
                ConfigDimension("flag", "bool"),
            ]
        )

    def test_finds_near_optimal_point(self):
        def objective(point):
            penalty = 0.0 if point.get("flag") else 25.0
            return (point["x"] - 70) ** 2 + (point["y"] - 30) ** 2 + penalty

        rrs = RecursiveRandomSearch(seed=3)
        result = rrs.search(self._space(), objective)
        assert result.best_value <= 400
        assert result.evaluations == len(result.trajectory)

    def test_never_worse_than_initial_point(self):
        def objective(point):
            return abs(point["x"] - 10) + abs(point["y"] - 10)

        initial = {"x": 10, "y": 10, "flag": False}
        result = RecursiveRandomSearch(seed=1).search(self._space(), objective, initial_point=initial)
        assert result.best_value <= objective(initial)

    def test_deterministic_given_rng(self):
        def objective(point):
            return point["x"] + point["y"]

        space = self._space()
        a = RecursiveRandomSearch(seed=9).search(space, objective, rng=DeterministicRNG(4))
        b = RecursiveRandomSearch(seed=9).search(space, objective, rng=DeterministicRNG(4))
        assert a.best_point == b.best_point
        assert a.best_value == b.best_value

    def test_empty_space(self):
        result = RecursiveRandomSearch().search(ConfigurationSpace(dimensions=[]), lambda p: 42.0)
        assert result.best_value == 42.0
        assert result.best_point == {}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RecursiveRandomSearch(exploration_samples=0)
        with pytest.raises(ValueError):
            RecursiveRandomSearch(shrink_factor=1.5)
