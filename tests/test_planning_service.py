"""The serving contract battery: bit-identity, fairness, faults, attribution.

The contract under test is the one ``docs/service.md`` documents: the
:class:`~repro.service.server.PlanningServer` changes *when and where* an
optimization runs — admission queue, micro-batches, work-stealing pools,
shared warm caches — never what it answers.  Every response's
``(plan_signature, decision_fingerprint, estimated_cost_s)`` triple must be
bit-identical to :func:`~repro.service.server.cold_optimize`, the cold
serial in-process oracle, under concurrent mixed-tenant load on every pool,
warm or cold, worker crashes included.

On top of identity the battery asserts the service-layer properties:
per-tenant round-robin fairness and bounded admission, clean cancellation
and rejection (no other tenant's answer changes), and the attribution
invariant — per-tenant :class:`~repro.service.stats.ServiceStats` counters
sum *exactly* to the global cache deltas under any interleaving.
"""

import asyncio

import pytest

from repro.cluster import ClusterSpec
from repro.profiler import Profiler
from repro.service import (
    AdmissionQueue,
    AdmissionRejected,
    OPTIMIZER_VARIANTS,
    PlanRequest,
    PlanningServer,
    cold_optimize,
    oracle_fingerprint,
    percentile,
)
from repro.verification import (
    FaultPlan,
    FaultSpec,
    RandomWorkflowGenerator,
    install_fault_plan,
)
from repro.verification.generator import GeneratorConfig
from repro.workloads import build_workload

CLUSTER = ClusterSpec.paper_cluster()

#: The mixed catalog × variant grid of the load battery.  Multiple tenants
#: request the same combo (requests map ``i % len(COMBOS)``, tenants
#: ``i % 4``), so one tenant's solved units serve another's lookups —
#: that's what makes ``cross_origin_hits`` observable.
COMBOS = (
    ("rand-a", "Stubby"),
    ("rand-b", "Stubby"),
    ("pj", "Stubby"),
    ("rand-a", "Vertical"),
    ("rand-b", "Horizontal"),
    ("pj", "Baseline"),
)

#: Pools the bit-identity battery sweeps (the acceptance grid).
POOLS = ("serial", "thread:4", "process:2")


@pytest.fixture(scope="module")
def catalog():
    """Mixed canned + random profiled workloads, built once per module."""
    plans = {}
    for name, seed in (("rand-a", 101), ("rand-b", 202)):
        generated = RandomWorkflowGenerator(
            GeneratorConfig(min_jobs=3, max_jobs=4)
        ).generate(seed)
        plans[name] = generated.plan
    workload = build_workload("PJ", scale=0.1, seed=42)
    Profiler().profile_workflow(workload.workflow, workload.base_datasets)
    plans["pj"] = workload.plan
    return plans


#: Cold-oracle memo shared by every test in the module (the oracle is a
#: pure function of (workload, optimizer) — PlanRequest's seed is fixed).
_ORACLES = {}


def oracle(catalog, workload, optimizer):
    key = (workload, optimizer)
    if key not in _ORACLES:
        _ORACLES[key] = oracle_fingerprint(
            cold_optimize(CLUSTER, catalog[workload], optimizer)
        )
    return _ORACLES[key]


def request_for(i: int) -> PlanRequest:
    workload, optimizer = COMBOS[i % len(COMBOS)]
    return PlanRequest(
        tenant=f"t{i % 4}",
        workload=workload,
        optimizer=optimizer,
        # Heterogeneous declared costs: the full Stubby search is the
        # expensive request the stealing pool routes around.
        cost_weight=3.0 if optimizer == "Stubby" else 1.0,
    )


def make_server(catalog, **kwargs):
    server = PlanningServer(CLUSTER, **kwargs)
    for name, plan in catalog.items():
        server.register_workload(name, plan)
    return server


async def submit_ok(server, i: int):
    request = request_for(i)
    response = await server.submit(request)
    assert response.ok, response.error
    assert response.queue_wait_s >= 0.0
    assert response.latency_s >= response.service_s >= 0.0
    return (request.workload, request.optimizer), response


class TestBitIdentityUnderLoad:
    """16 concurrent mixed-tenant clients, every pool, warm and cold."""

    @pytest.mark.parametrize("pool", POOLS)
    def test_concurrent_responses_match_cold_oracle(self, pool, catalog):
        async def main():
            server = make_server(catalog, pool=pool)
            async with server:
                cold_before = server.stats.total_decision_stats()
                cold_wave = await asyncio.gather(*[submit_ok(server, i) for i in range(16)])
                cold_delta = server.stats.total_decision_stats().since(cold_before)
                # Warm restart: worker cache shards merge on stop; the next
                # wave's units replay from the shared decision cache.
                await server.restart()
                warm_before = server.stats.total_decision_stats()
                warm_wave = await asyncio.gather(*[submit_ok(server, i) for i in range(16)])
                warm_delta = server.stats.total_decision_stats().since(warm_before)

                for (workload, optimizer), response in cold_wave + warm_wave:
                    assert response.identity() == oracle(catalog, workload, optimizer), (
                        f"{pool}: {workload}/{optimizer} diverged from the cold oracle"
                    )
                assert warm_delta.hit_rate > cold_delta.hit_rate, (
                    f"{pool}: warm wave should beat the cold wave's decision hit "
                    f"rate ({warm_delta.as_dict()} vs {cold_delta.as_dict()})"
                )
                assert warm_delta.decision_misses == 0
                # Pool accounting saw every request exactly once, across
                # batches, sessions, and the restart — no double counts.
                assert server.dispatch_stats().tasks == 32
            return server

        server = asyncio.run(main())
        for row in server.stats.tenants.values():
            assert row.failed == 0 and row.completed == 8

    def test_repeat_clients_on_one_running_server_stay_identical(self, catalog):
        """Same combo, many tenants, one server: answers never drift."""

        async def main():
            server = make_server(catalog, pool="thread:2")
            async with server:
                waves = []
                for _wave in range(3):
                    waves.extend(
                        await asyncio.gather(*[submit_ok(server, i) for i in (0, 0, 3, 3)])
                    )
            identities = {key: set() for key, _ in waves}
            for key, response in waves:
                identities[key].add(response.identity())
            for key, seen in identities.items():
                assert len(seen) == 1
                assert seen.pop() == oracle(catalog, *key)

        asyncio.run(main())


class TestAttributionInvariant:
    """Per-tenant counters reconcile exactly with the global caches."""

    def test_tenant_sums_equal_global_deltas(self, catalog):
        async def main():
            server = make_server(catalog, pool="thread:2")
            cost_before = server.costs.stats_snapshot()
            decision_before = server.decisions.stats_snapshot()
            async with server:
                await asyncio.gather(*[submit_ok(server, i) for i in range(12)])
            cost_delta = server.costs.stats_snapshot().since(cost_before)
            decision_delta = server.decisions.stats_snapshot().since(decision_before)
            # Exact, counter-for-counter — not approximate monitoring.
            assert server.stats.total_cost_stats().as_dict() == cost_delta.as_dict()
            assert (
                server.stats.total_decision_stats().as_dict() == decision_delta.as_dict()
            )
            # Tenants share combos, so somebody's lookup was answered by an
            # entry a *different* tenant's request paid for.
            assert server.stats.total_decision_stats().cross_origin_hits > 0
            rows = server.stats.tenants
            assert sorted(rows) == ["t0", "t1", "t2", "t3"]
            assert all(row.completed == 3 for row in rows.values())
            report = server.stats.report()
            for tenant in rows:
                assert tenant in report

        asyncio.run(main())


class TestFaultInjection:
    """Crashes, cancellations, and overload never change anyone's answer."""

    def test_killed_worker_is_survived_and_accounted(self, catalog):
        # The FaultPlan harness replaces the old external os.kill(): a kill
        # spec armed for pool worker 0 SIGKILLs it (from inside the forked
        # child) on its second dispatched task.  The worker_slot match means
        # inline execution (slot -1) and the parent can never fire it.
        plan = FaultPlan(
            [
                FaultSpec(
                    site="parallel.task",
                    kind="kill",
                    match={"worker_slot": 0},
                    at_hits=(2,),
                )
            ],
            name="kill-worker-0",
        )

        async def main():
            server = make_server(catalog, pool="process:2")
            cost_before = server.costs.stats_snapshot()
            decision_before = server.decisions.stats_snapshot()
            await server.start(serve=False)
            try:
                # One guaranteed 4-request batch, so the pool forks; worker 0
                # dies on its second task of the batch and the in-flight
                # request is retried on the survivor.
                wave_a = [asyncio.ensure_future(submit_ok(server, i)) for i in range(4)]
                await asyncio.sleep(0.1)
                server.resume()
                wave_a = await asyncio.gather(*wave_a)
                wave_b = [asyncio.ensure_future(submit_ok(server, i)) for i in range(4)]
                await asyncio.sleep(0.05)
                wave_b = await asyncio.gather(*wave_b)

                for (workload, optimizer), response in wave_a + wave_b:
                    assert response.identity() == oracle(catalog, workload, optimizer)
                    assert response.degradation_level == 0
                stats = server.dispatch_stats()
                assert stats.worker_deaths >= 1
                assert stats.retried_tasks >= 1
                # Exactly one execution counted per request — the lost
                # worker's chunk (response + stats payload) vanished whole,
                # so nothing double-counted and nothing half-merged.
                assert stats.tasks == 8
            finally:
                await server.stop()
            cost_delta = server.costs.stats_snapshot().since(cost_before)
            decision_delta = server.decisions.stats_snapshot().since(decision_before)
            assert server.stats.total_cost_stats().as_dict() == cost_delta.as_dict()
            assert (
                server.stats.total_decision_stats().as_dict() == decision_delta.as_dict()
            )
            for row in server.stats.tenants.values():
                assert row.failed == 0

        with install_fault_plan(plan):
            asyncio.run(main())

    def test_client_timeout_withdraws_quietly(self, catalog):
        async def main():
            server = make_server(catalog, pool="thread:1")
            await server.start(serve=False)
            # Queue a real request, then an impatient one that times out
            # while still queued (nothing dispatches until resume()).
            patient = asyncio.ensure_future(submit_ok(server, 0))
            await asyncio.sleep(0)
            with pytest.raises(asyncio.TimeoutError):
                await server.submit(
                    PlanRequest(tenant="impatient", workload="rand-a"), timeout=0.05
                )
            assert server.admission.stats.cancelled_in_queue == 1
            server.resume()
            (key, response) = await patient
            assert response.identity() == oracle(catalog, *key)
            # The withdrawn request never executed and nobody else noticed.
            impatient = server.stats.tenant("impatient")
            assert impatient.cancelled == 1 and impatient.completed == 0
            assert server.stats.tenant("t0").failed == 0
            # The server keeps serving after a cancellation.
            key, response = await submit_ok(server, 1)
            assert response.identity() == oracle(catalog, *key)
            await server.stop()

        asyncio.run(main())

    def test_admission_overflow_rejects_loudly_then_serves_the_admitted(self, catalog):
        async def main():
            server = make_server(
                catalog, pool="thread:2", queue_capacity=3, per_tenant_capacity=2
            )
            await server.start(serve=False)
            admitted = [
                asyncio.ensure_future(
                    server.submit(PlanRequest(tenant="t0", workload="rand-a"))
                )
                for _ in range(2)
            ]
            await asyncio.sleep(0)
            with pytest.raises(AdmissionRejected, match="quota"):
                await server.submit(PlanRequest(tenant="t0", workload="rand-a"))
            admitted.append(
                asyncio.ensure_future(
                    server.submit(PlanRequest(tenant="t1", workload="rand-b"))
                )
            )
            await asyncio.sleep(0)
            with pytest.raises(AdmissionRejected, match="full"):
                await server.submit(PlanRequest(tenant="t1", workload="rand-b"))
            assert server.admission.stats.rejected_tenant_full == 1
            assert server.admission.stats.rejected_full == 1
            server.resume()
            responses = await asyncio.gather(*admitted)
            for response in responses:
                assert response.ok
                assert response.identity() == oracle(catalog, response.workload, "Stubby")
            assert server.stats.tenant("t0").rejected == 1
            assert server.stats.tenant("t1").rejected == 1
            await server.stop()

        asyncio.run(main())


class TestServerGuards:
    def test_unknown_workload_and_variant_rejected(self, catalog):
        async def main():
            server = make_server(catalog, pool="serial")
            async with server:
                with pytest.raises(AdmissionRejected, match="unknown workload"):
                    await server.submit(PlanRequest(tenant="t0", workload="nope"))
                with pytest.raises(AdmissionRejected, match="unknown optimizer"):
                    await server.submit(
                        PlanRequest(tenant="t0", workload="rand-a", optimizer="Magic")
                    )
            with pytest.raises(AdmissionRejected, match="not running"):
                await server.submit(PlanRequest(tenant="t0", workload="rand-a"))
            assert server.stats.tenant("t0").rejected == 3
            assert set(OPTIMIZER_VARIANTS) == {"Stubby", "Vertical", "Horizontal", "Baseline"}
            assert server.workloads == ("pj", "rand-a", "rand-b")

        asyncio.run(main())

    def test_register_after_fork_is_rejected(self, catalog):
        async def main():
            server = make_server(catalog, pool="process:2")
            await server.start(serve=False)
            wave = [asyncio.ensure_future(submit_ok(server, i)) for i in (0, 1)]
            await asyncio.sleep(0.1)
            server.resume()
            await asyncio.gather(*wave)
            with pytest.raises(RuntimeError, match="forked"):
                server.register_workload("late", catalog["rand-a"])
            await server.stop()

        asyncio.run(main())


class TestAdmissionQueueUnit:
    """The fairness and bounding mechanics, deterministically."""

    def test_round_robin_interleaves_tenants(self):
        queue = AdmissionQueue(capacity=16)
        for item in ("A1", "A2", "A3", "A4", "A5"):
            queue.offer("A", item)
        for item in ("B1", "B2"):
            queue.offer("B", item)
        queue.offer("C", "C1")
        batch = queue.take_batch(8)
        # One item per tenant per ring turn: a 5-deep tenant and a 1-deep
        # tenant both land their head-of-line request immediately.
        assert batch == ["A1", "B1", "C1", "A2", "B2", "A3", "A4", "A5"]
        assert len(queue) == 0
        assert queue.stats.taken == 8

    def test_bounds_and_quota(self):
        queue = AdmissionQueue(capacity=3, per_tenant_capacity=2)
        queue.offer("A", 1)
        queue.offer("A", 2)
        with pytest.raises(AdmissionRejected, match="quota"):
            queue.offer("A", 3)
        queue.offer("B", 1)
        with pytest.raises(AdmissionRejected, match="full"):
            queue.offer("B", 2)
        assert queue.stats.rejected == 2
        assert queue.stats.peak_depth == 3
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=1, per_tenant_capacity=0)
        with pytest.raises(ValueError):
            queue.take_batch(0)

    def test_remove_releases_capacity_without_double_turns(self):
        queue = AdmissionQueue(capacity=2)
        queue.offer("A", "a1")
        assert queue.remove("A", "a1") is True
        assert queue.remove("A", "a1") is False
        assert queue.remove("ghost", "x") is False
        queue.offer("A", "a2")
        queue.offer("B", "b1")
        # The stale ring entry from the removed item must not hand A two
        # turns in one round.
        assert queue.take_batch(2) == ["a2", "b1"]
        assert len(queue) == 0

    def test_close_drains_then_stops(self):
        queue = AdmissionQueue(capacity=4)
        queue.offer("A", "a1")
        queue.close()
        with pytest.raises(AdmissionRejected, match="closed"):
            queue.offer("A", "a2")
        assert queue.closed
        assert queue.take_batch(4) == ["a1"]
        assert queue.take_batch(4, timeout=0.01) == []
        queue.reopen()
        queue.offer("A", "a3")
        assert queue.depth("A") == 1 and queue.depth() == 1
        assert queue.take_batch(4) == ["a3"]

    def test_take_batch_times_out_empty(self):
        queue = AdmissionQueue(capacity=2)
        assert queue.take_batch(2, timeout=0.01) == []


class TestStatsUnit:
    def test_percentile_nearest_rank(self):
        assert percentile([], 50) == 0.0
        assert percentile([3.0], 99) == 3.0
        values = [float(v) for v in range(1, 11)]
        assert percentile(values, 50) == 5.0
        assert percentile(values, 99) == 10.0
        with pytest.raises(ValueError):
            percentile(values, 101)
