"""Tests for the workflow DAG model and subgraph classification."""

import pytest

from repro.common.errors import WorkflowValidationError
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import simple_job
from repro.workflow.graph import Workflow
from repro.workflow.subgraphs import (
    SubgraphType,
    classify_pair,
    classify_subgraph,
    concurrently_runnable_groups,
    shared_input_groups,
)


def _identity(key, value):
    yield {}, dict(value)


def _job(name, inputs, output, reduce_key=None):
    if isinstance(inputs, str):
        inputs = (inputs,)
    job = simple_job(
        name,
        inputs[0],
        output,
        _identity,
        reduce_fn=(lambda key, values: iter([(key, values[0])])) if reduce_key else None,
        group_fields=(reduce_key,) if reduce_key else (),
        config=JobConfig(num_reduce_tasks=2 if reduce_key else 0),
    )
    if len(inputs) > 1:
        job.pipelines[0].input_datasets = tuple(inputs)
    return job


def build_diamond() -> Workflow:
    """D0 -> J1 -> D1 -> {J2, J3} -> D2/D3 -> J4 (reads both)."""
    workflow = Workflow("diamond")
    workflow.add_job(_job("J1", "D0", "D1", reduce_key="k"))
    workflow.add_job(_job("J2", "D1", "D2", reduce_key="k"))
    workflow.add_job(_job("J3", "D1", "D3", reduce_key="k"))
    workflow.add_job(_job("J4", ("D2", "D3"), "D4", reduce_key="k"))
    return workflow


class TestWorkflowStructure:
    def test_duplicate_job_rejected(self):
        workflow = Workflow()
        workflow.add_job(_job("J1", "D0", "D1"))
        with pytest.raises(WorkflowValidationError):
            workflow.add_job(_job("J1", "D0", "D2"))

    def test_producer_and_consumers(self):
        workflow = build_diamond()
        assert workflow.producer_of("D1").name == "J1"
        assert workflow.producer_of("D0") is None
        assert {c.name for c in workflow.consumers_of("D1")} == {"J2", "J3"}

    def test_producer_and_consumer_jobs(self):
        workflow = build_diamond()
        assert {p.name for p in workflow.producer_jobs("J4")} == {"J2", "J3"}
        assert {c.name for c in workflow.consumer_jobs("J1")} == {"J2", "J3"}

    def test_base_and_terminal_datasets(self):
        workflow = build_diamond()
        assert [d.name for d in workflow.base_datasets()] == ["D0"]
        assert [d.name for d in workflow.terminal_datasets()] == ["D4"]
        assert {d.name for d in workflow.intermediate_datasets()} == {"D1", "D2", "D3"}

    def test_topological_order(self):
        workflow = build_diamond()
        order = [v.name for v in workflow.topological_order()]
        assert order.index("J1") < order.index("J2")
        assert order.index("J2") < order.index("J4")
        assert order.index("J3") < order.index("J4")

    def test_topological_levels(self):
        workflow = build_diamond()
        levels = [[v.name for v in level] for level in workflow.topological_levels()]
        assert levels == [["J1"], ["J2", "J3"], ["J4"]]

    def test_depends_on(self):
        workflow = build_diamond()
        assert workflow.depends_on("J4", "J1")
        assert not workflow.depends_on("J1", "J4")
        assert not workflow.depends_on("J2", "J3")

    def test_depends_on_self_is_false(self):
        """Regression (ISSUE 6): the upward walk used to start *at* the
        consumer, so ``depends_on(x, x)`` was ``True`` for every job."""
        workflow = build_diamond()
        for name in workflow.job_names:
            assert not workflow.depends_on(name, name)
            assert not workflow._scan_depends_on(name, name)

    def test_validate_detects_double_writer(self):
        workflow = Workflow()
        workflow.add_job(_job("J1", "D0", "D1"))
        workflow.add_job(_job("J2", "D0", "D1"))
        with pytest.raises(WorkflowValidationError):
            workflow.validate()

    def test_validate_detects_self_loop(self):
        workflow = Workflow()
        job = _job("J1", "D0", "D0")
        with pytest.raises(WorkflowValidationError):
            workflow.add_job(job)
            workflow.validate()

    def test_copy_is_independent(self):
        workflow = build_diamond()
        clone = workflow.copy()
        clone.remove_job("J4")
        assert workflow.has_job("J4")
        assert not clone.has_job("J4")

    def test_replace_job_keeps_order(self):
        workflow = build_diamond()
        replacement = _job("J2b", "D1", "D2", reduce_key="k")
        workflow.replace_job("J2", replacement)
        assert workflow.has_job("J2b") and not workflow.has_job("J2")
        order = [v.name for v in workflow.topological_order()]
        assert order.index("J2b") < order.index("J4")

    def test_prune_orphan_datasets(self):
        workflow = build_diamond()
        workflow.remove_job("J4")
        orphans = workflow.prune_orphan_datasets()
        assert "D4" in orphans

    def test_remove_referenced_dataset_rejected(self):
        workflow = build_diamond()
        with pytest.raises(WorkflowValidationError):
            workflow.remove_dataset("D1")


def _pre_index_topological_order(workflow):
    """The pre-ISSUE-6 topological sort, verbatim: FIFO ready list re-sorted
    against a rebuilt name list every iteration.  Kept here as the ordering
    oracle for the heap-based replacement."""
    in_degree = {}
    for vertex in workflow._jobs.values():
        in_degree[vertex.name] = len(workflow._scan_producer_jobs(vertex.name))
    order = []
    ready = [name for name in workflow._jobs if in_degree[name] == 0]
    while ready:
        name = ready.pop(0)
        vertex = workflow._jobs[name]
        order.append(vertex)
        for consumer in workflow._scan_consumer_jobs(name):
            in_degree[consumer.name] -= 1
            if in_degree[consumer.name] == 0:
                ready.append(consumer.name)
        ready.sort(key=lambda n: list(workflow._jobs).index(n))
    if len(order) != len(workflow._jobs):
        raise WorkflowValidationError("workflow graph contains a cycle")
    return order


class TestTopologicalOrderDeterminism:
    """The heap-based sort emits byte-identical orders to the old one."""

    @pytest.mark.parametrize("seed", range(10))
    def test_heap_toposort_matches_pre_index_order_on_random_dags(self, seed):
        from repro.verification import RandomWorkflowGenerator

        generator = RandomWorkflowGenerator().with_config(
            min_jobs=8, max_jobs=14, profile=False
        )
        workflow = generator.generate(seed).workflow
        expected = [v.name for v in _pre_index_topological_order(workflow)]
        assert [v.name for v in workflow.topological_order()] == expected
        assert [v.name for v in workflow._scan_topological_order()] == expected

    def test_heap_toposort_matches_after_replace_job(self):
        workflow = build_diamond()
        workflow.replace_job("J2", _job("J2b", "D1", "D2", reduce_key="k"))
        expected = [v.name for v in _pre_index_topological_order(workflow)]
        assert [v.name for v in workflow.topological_order()] == expected


class TestProducerConsumerDedup:
    """Seen-set dedup keeps first-seen output order (no O(n) membership)."""

    def test_consumer_jobs_order_with_fan_out(self):
        workflow = Workflow()
        workflow.add_job(_job("P", "D0", "D1"))
        for index in range(6):
            workflow.add_job(_job(f"C{index}", "D1", f"D2_{index}"))
        assert [c.name for c in workflow.consumer_jobs("P")] == [
            f"C{index}" for index in range(6)
        ]

    def test_producer_jobs_order_follows_input_dataset_order(self):
        workflow = Workflow()
        workflow.add_job(_job("A", "S0", "DA"))
        workflow.add_job(_job("B", "S0", "DB"))
        # J reads DB before DA: producer order must follow its input order,
        # not the producers' insertion order.
        workflow.add_job(_job("J", ("DB", "DA"), "DJ"))
        assert [p.name for p in workflow.producer_jobs("J")] == ["B", "A"]
        assert [p.name for p in workflow._scan_producer_jobs("J")] == ["B", "A"]


class TestSubgraphClassification:
    def test_none_to_one(self):
        workflow = build_diamond()
        edges = classify_subgraph(workflow, "D0")
        assert edges[0].subgraph is SubgraphType.NONE_TO_ONE

    def test_one_to_many(self):
        workflow = build_diamond()
        edges = classify_subgraph(workflow, "D1")
        assert {e.subgraph for e in edges} == {SubgraphType.ONE_TO_MANY}
        assert len(edges) == 2

    def test_many_to_one(self):
        workflow = build_diamond()
        assert classify_pair(workflow, "J2", "J4") is SubgraphType.MANY_TO_ONE

    def test_one_to_none(self):
        workflow = build_diamond()
        edges = classify_subgraph(workflow, "D4")
        assert edges[0].subgraph is SubgraphType.ONE_TO_NONE

    def test_one_to_one(self):
        workflow = Workflow()
        workflow.add_job(_job("A", "D0", "D1", reduce_key="k"))
        workflow.add_job(_job("B", "D1", "D2", reduce_key="k"))
        assert classify_pair(workflow, "A", "B") is SubgraphType.ONE_TO_ONE

    def test_classify_pair_unrelated(self):
        workflow = build_diamond()
        assert classify_pair(workflow, "J2", "J3") is None

    def test_shared_input_groups(self):
        workflow = build_diamond()
        groups = dict(shared_input_groups(workflow))
        assert set(groups["D1"]) == {"J2", "J3"}

    def test_concurrently_runnable_groups(self):
        workflow = build_diamond()
        groups = concurrently_runnable_groups(workflow)
        assert ["J2", "J3"] in groups
