"""Tests for the baseline optimizers and the eight evaluation workloads."""

import math

import pytest

from repro.baselines import (
    MRShareOptimizer,
    PigBaselineOptimizer,
    StarfishOptimizer,
    YSmartOptimizer,
)
from repro.cluster import ClusterSpec
from repro.common.records import records_equal
from repro.profiler import Profiler
from repro.workflow.executor import WorkflowExecutor
from repro.workloads import WORKLOAD_ORDER, build_workload

CLUSTER = ClusterSpec.paper_cluster()


def _profiled(abbr, scale=0.15):
    workload = build_workload(abbr, scale=scale)
    Profiler().profile_workflow(workload.workflow, workload.base_datasets)
    return workload


class TestBaselines:
    def test_pig_baseline_packs_shared_input(self):
        workload = _profiled("PJ")
        result = PigBaselineOptimizer(CLUSTER).optimize(workload.plan)
        assert result.num_jobs == 2  # PJ_J2 and PJ_J3 packed unconditionally
        assert result.optimizer == "Baseline"

    def test_pig_baseline_applies_rule_of_thumb_config(self):
        workload = _profiled("IR")
        result = PigBaselineOptimizer(CLUSTER).optimize(workload.plan)
        config = result.plan.job("IR_J1").job.config
        assert config.num_reduce_tasks == max(1, int(CLUSTER.total_reduce_slots * 0.9))
        assert config.combiner_enabled  # IR_J1 has a combine function

    def test_starfish_changes_only_configurations(self):
        workload = _profiled("IR")
        result = StarfishOptimizer(CLUSTER).optimize(workload.plan)
        assert result.num_jobs == workload.num_jobs
        assert set(result.plan.workflow.job_names) == set(workload.workflow.job_names)
        assert any(t == "configuration" for t in result.plan.transformations_applied())

    def test_starfish_improves_estimated_cost(self):
        workload = _profiled("IR")
        starfish = StarfishOptimizer(CLUSTER)
        before = starfish.whatif.estimate_workflow(workload.plan.workflow).total_s
        result = starfish.optimize(workload.plan)
        assert result.estimated_cost_s <= before

    def test_ysmart_minimizes_job_count(self):
        workload = _profiled("BR")
        result = YSmartOptimizer(CLUSTER).optimize(workload.plan)
        assert result.num_jobs < workload.num_jobs

    def test_ysmart_packs_pj_even_though_it_hurts(self):
        workload = _profiled("PJ")
        result = YSmartOptimizer(CLUSTER).optimize(workload.plan)
        assert result.num_jobs <= 2

    def test_mrshare_declines_packing_for_pj(self):
        workload = _profiled("PJ")
        result = MRShareOptimizer(CLUSTER).optimize(workload.plan)
        assert result.num_jobs == 3

    def test_mrshare_only_considers_horizontal(self):
        workload = _profiled("IR")
        result = MRShareOptimizer(CLUSTER).optimize(workload.plan)
        assert result.num_jobs == workload.num_jobs

    def test_baseline_plans_remain_equivalent(self):
        workload = _profiled("PJ")
        executor = WorkflowExecutor()
        _, reference_fs = executor.execute(workload.workflow.copy(), base_datasets=workload.base_datasets)
        for optimizer in (
            PigBaselineOptimizer(CLUSTER),
            StarfishOptimizer(CLUSTER),
            YSmartOptimizer(CLUSTER),
            MRShareOptimizer(CLUSTER),
        ):
            result = optimizer.optimize(workload.plan)
            _, fs = executor.execute(result.plan.workflow, base_datasets=workload.base_datasets)
            for name in ("pj_cov", "pj_corr"):
                assert records_equal(reference_fs.get(name).all_records(), fs.get(name).all_records()), optimizer.name


class TestWorkloadCatalog:
    def test_all_eight_workloads_build(self):
        for abbr in WORKLOAD_ORDER:
            workload = build_workload(abbr, scale=0.1)
            workload.workflow.validate()
            assert workload.base_datasets
            assert workload.paper_dataset_gb > 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            build_workload("XX")

    def test_job_counts_match_paper(self):
        expected = {"IR": 3, "SN": 4, "LA": 4, "WG": 2, "BA": 4, "BR": 7, "PJ": 3, "US": 3}
        for abbr, count in expected.items():
            assert build_workload(abbr, scale=0.1).num_jobs == count

    def test_logical_sizes_match_paper_scale(self):
        for abbr, paper_gb in (("IR", 264.0), ("BR", 530.0), ("PJ", 10.0)):
            workload = build_workload(abbr, scale=0.1)
            assert workload.logical_dataset_gb == pytest.approx(paper_gb, rel=0.01)

    def test_every_job_has_schema_annotation(self):
        for abbr in WORKLOAD_ORDER:
            workload = build_workload(abbr, scale=0.1)
            for vertex in workload.workflow.jobs:
                assert vertex.annotations.has_schema, f"{abbr}:{vertex.name}"

    def test_base_datasets_are_annotated(self):
        workload = build_workload("LA", scale=0.1)
        annotation = workload.workflow.dataset("uservisits").annotation
        assert annotation is not None and annotation.partition_kind == "range"

    def test_deterministic_generation(self):
        a = build_workload("SN", scale=0.1, seed=9)
        b = build_workload("SN", scale=0.1, seed=9)
        assert records_equal(
            a.base_datasets["paper_authors"].all_records(),
            b.base_datasets["paper_authors"].all_records(),
        )


class TestWorkloadSemantics:
    def test_ir_term_frequencies(self):
        workload = build_workload("IR", scale=0.1)
        _, fs = WorkflowExecutor().execute(workload.workflow, base_datasets=workload.base_datasets)
        corpus = workload.base_datasets["corpus"].all_records()
        tf = {(r["doc"], r["word"]): r["tf"] for r in fs.get("ir_tf").all_records()}
        doc, word = corpus[0]["doc"], corpus[0]["word"]
        expected = sum(1 for r in corpus if r["doc"] == doc and r["word"] == word)
        assert tf[(doc, word)] == expected

    def test_sn_top20_sorted_and_bounded(self):
        workload = build_workload("SN", scale=0.1)
        _, fs = WorkflowExecutor().execute(workload.workflow, base_datasets=workload.base_datasets)
        top = fs.get("sn_top20").all_records()
        assert 0 < len(top) <= 20
        counts = [r["count"] for r in sorted(top, key=lambda r: r["position"])]
        assert counts == sorted(counts, reverse=True)

    def test_la_top_user_has_highest_revenue(self):
        workload = build_workload("LA", scale=0.1)
        _, fs = WorkflowExecutor().execute(workload.workflow, base_datasets=workload.base_datasets)
        per_user = {r["ip"]: r["total_revenue"] for r in fs.get("la_user_agg").all_records()}
        top = fs.get("la_top_user").all_records()[0]
        assert top["total_revenue"] == pytest.approx(max(per_user.values()))

    def test_wg_ranks_are_positive_and_damped(self):
        workload = build_workload("WG", scale=0.1)
        _, fs = WorkflowExecutor().execute(workload.workflow, base_datasets=workload.base_datasets)
        ranks = [r["rank"] for r in fs.get("wg_newranks").all_records()]
        assert ranks and all(rank >= 0.15 for rank in ranks)

    def test_ba_total_is_single_record(self):
        workload = build_workload("BA", scale=0.1)
        _, fs = WorkflowExecutor().execute(workload.workflow, base_datasets=workload.base_datasets)
        totals = fs.get("ba_total").all_records()
        assert len(totals) == 1 and totals[0]["avg_yearly_loss"] >= 0

    def test_br_terminal_counts_positive(self):
        workload = build_workload("BR", scale=0.1)
        _, fs = WorkflowExecutor().execute(workload.workflow, base_datasets=workload.base_datasets)
        assert fs.get("br_distinct1").all_records()[0]["distinct_prices"] > 0
        assert fs.get("br_distinct2").all_records()[0]["distinct_prices"] > 0

    def test_pj_correlation_in_unit_interval(self):
        workload = build_workload("PJ", scale=0.1)
        _, fs = WorkflowExecutor().execute(workload.workflow, base_datasets=workload.base_datasets)
        for record in fs.get("pj_corr").all_records():
            assert -1.0001 <= record["correlation"] <= 1.0001

    def test_us_consumers_respect_age_filters(self):
        workload = build_workload("US", scale=0.1)
        _, fs = WorkflowExecutor().execute(workload.workflow, base_datasets=workload.base_datasets)
        assert all(10 <= r["age"] < 35 for r in fs.get("us_young").all_records())
        assert all(35 <= r["age"] < 80 for r in fs.get("us_older").all_records())
