"""Tests for job configuration, configuration spaces, and partition functions."""

import pytest
from hypothesis import given, strategies as st

from repro.common.rng import DeterministicRNG
from repro.mapreduce.config import ConfigDimension, ConfigurationSpace, JobConfig
from repro.mapreduce.partitioner import PartitionFunction


class TestJobConfig:
    def test_defaults_valid(self):
        config = JobConfig()
        assert config.num_reduce_tasks == 1
        assert not config.is_map_only

    def test_map_only(self):
        assert JobConfig(num_reduce_tasks=0).is_map_only

    def test_validation(self):
        with pytest.raises(ValueError):
            JobConfig(num_reduce_tasks=-1)
        with pytest.raises(ValueError):
            JobConfig(split_size_mb=0)

    def test_chained_input_flag(self):
        assert JobConfig(max_parallel_maps_per_producer_reduce=1).chained_input
        assert not JobConfig().chained_input

    def test_with_settings_applies_values(self):
        config = JobConfig().with_settings({"num_reduce_tasks": 40, "io_sort_mb": 256, "compress_output": True})
        assert config.num_reduce_tasks == 40
        assert config.io_sort_mb == 256
        assert config.compress_output

    def test_with_settings_respects_forced_single_reduce(self):
        config = JobConfig(num_reduce_tasks=1, forced_single_reduce=True)
        updated = config.with_settings({"num_reduce_tasks": 100})
        assert updated.num_reduce_tasks == 1

    def test_with_settings_respects_map_only(self):
        config = JobConfig(num_reduce_tasks=0)
        assert config.with_settings({"num_reduce_tasks": 50}).num_reduce_tasks == 0

    def test_with_settings_ignores_unknown_keys(self):
        config = JobConfig().with_settings({"bogus": 12})
        assert config == JobConfig()

    def test_rule_of_thumb(self):
        config = JobConfig.rule_of_thumb(100)
        assert 1 <= config.num_reduce_tasks <= 100
        assert JobConfig.rule_of_thumb(100, map_only=True).is_map_only


class TestConfigurationSpace:
    def test_for_job_dimensions(self):
        space = ConfigurationSpace.for_job(max_reduce_tasks=200, map_only=False, has_combiner=True)
        names = set(space.names)
        assert {"num_reduce_tasks", "split_size_mb", "io_sort_mb", "combiner_enabled"}.issubset(names)

    def test_map_only_space_has_no_reduce_dimension(self):
        space = ConfigurationSpace.for_job(max_reduce_tasks=200, map_only=True)
        assert "num_reduce_tasks" not in space.names
        assert "compress_map_output" not in space.names

    def test_sample_within_bounds(self):
        space = ConfigurationSpace.for_job(max_reduce_tasks=50)
        rng = DeterministicRNG(3)
        for _ in range(20):
            point = space.sample(rng)
            assert 1 <= point["num_reduce_tasks"] <= 50
            assert 32 <= point["split_size_mb"] <= 256

    def test_sample_near_stays_in_bounds(self):
        space = ConfigurationSpace.for_job(max_reduce_tasks=50)
        rng = DeterministicRNG(3)
        center = space.sample(rng)
        for _ in range(20):
            point = space.sample_near(center, 0.1, rng)
            assert 1 <= point["num_reduce_tasks"] <= 50

    def test_clamp(self):
        space = ConfigurationSpace.for_job(max_reduce_tasks=50)
        clamped = space.clamp({"num_reduce_tasks": 10_000, "unknown": 5})
        assert clamped == {"num_reduce_tasks": 50}

    def test_size_estimate_positive(self):
        assert ConfigurationSpace.for_job(max_reduce_tasks=10).size_estimate() > 1

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            ConfigDimension("x", "weird")
        with pytest.raises(ValueError):
            ConfigDimension("x", "int", low=5, high=1)


class TestPartitionFunction:
    def test_default_hash(self):
        pf = PartitionFunction.default_hash(["a", "b"])
        assert pf.kind == "hash"
        assert pf.effective_sort_fields == ("a", "b")

    def test_hash_is_deterministic_and_consistent(self):
        pf = PartitionFunction.default_hash(["k"])
        key = {"k": "value-42"}
        assert pf.partition_index(key, 16) == pf.partition_index(dict(key), 16)

    def test_single_partition_short_circuit(self):
        pf = PartitionFunction.default_hash(["k"])
        assert pf.partition_index({"k": 9}, 1) == 0

    def test_range_partitioning(self):
        pf = PartitionFunction.ranged("k", [10.0, 20.0])
        assert pf.partition_index({"k": 5}, 3) == 0
        assert pf.partition_index({"k": 15}, 3) == 1
        assert pf.partition_index({"k": 25}, 3) == 2

    def test_range_requires_split_points(self):
        with pytest.raises(ValueError):
            PartitionFunction(kind="range", fields=("k",))

    def test_satisfies_same_fields_and_sort_prefix(self):
        constraint = PartitionFunction(kind="hash", fields=("a",), sort_fields=("a", "b"))
        ok = PartitionFunction(kind="hash", fields=("a",), sort_fields=("a", "b", "c"))
        assert ok.satisfies(constraint)
        bad_fields = PartitionFunction(kind="hash", fields=("b",), sort_fields=("a", "b"))
        assert not bad_fields.satisfies(constraint)
        bad_sort = PartitionFunction(kind="hash", fields=("a",), sort_fields=("b", "a"))
        assert not bad_sort.satisfies(constraint)

    def test_satisfies_none_constraint(self):
        assert PartitionFunction.default_hash(["a"]).satisfies(None)

    def test_with_helpers(self):
        pf = PartitionFunction.default_hash(["a"])
        assert pf.with_sort_fields(["a", "b"]).effective_sort_fields == ("a", "b")
        assert pf.with_split_points([5.0]).kind == "range"

    @given(
        st.dictionaries(st.sampled_from(["a", "b"]), st.integers(-50, 50), min_size=1),
        st.integers(2, 32),
    )
    def test_partition_index_in_range(self, key, partitions):
        pf = PartitionFunction.default_hash(["a", "b"])
        index = pf.partition_index(key, partitions)
        assert 0 <= index < partitions

    @given(st.integers(-1000, 1000), st.integers(2, 16))
    def test_equal_keys_same_partition(self, value, partitions):
        pf = PartitionFunction.default_hash(["k"])
        assert pf.partition_index({"k": value}, partitions) == pf.partition_index(
            {"k": value, "other": 1}, partitions
        )
