"""Tests for the five transformation types: preconditions, postconditions, and
result equivalence of transformed plans."""

import pytest

from repro.cluster import ClusterSpec
from repro.common.records import records_equal
from repro.core.plan import Plan
from repro.core.transformations import (
    HorizontalPacking,
    InterJobVerticalPacking,
    IntraJobVerticalPacking,
    PartitionFunctionTransformation,
)
from repro.core.transformations.configuration import ConfigurationTransformation
from repro.profiler import Profiler
from repro.workflow.executor import WorkflowExecutor
from repro.workloads import build_workload


def _profiled_plan(abbr, scale=0.15):
    workload = build_workload(abbr, scale=scale)
    Profiler().profile_workflow(workload.workflow, workload.base_datasets)
    return workload, workload.plan


def _execute(plan_or_workflow, workload):
    workflow = plan_or_workflow.workflow if isinstance(plan_or_workflow, Plan) else plan_or_workflow
    execution, filesystem = WorkflowExecutor().execute(
        workflow.copy(), base_datasets=workload.base_datasets
    )
    return filesystem


def _terminal_outputs(workload, filesystem):
    outputs = {}
    for vertex in workload.workflow.terminal_datasets():
        if filesystem.exists(vertex.name):
            outputs[vertex.name] = filesystem.get(vertex.name).all_records()
    return outputs


class TestIntraJobVerticalPacking:
    def test_finds_application_on_ir(self):
        _, plan = _profiled_plan("IR")
        applications = IntraJobVerticalPacking().find_applications(plan, ("IR_J1", "IR_J2"))
        assert len(applications) == 1
        assert applications[0].target_jobs == ("IR_J1", "IR_J2")
        assert applications[0].details["intersection"] == ("doc",)

    def test_no_application_without_schema(self):
        _, plan = _profiled_plan("IR")
        plan.job("IR_J2").annotations.schema = None
        assert IntraJobVerticalPacking().find_applications(plan, ("IR_J1", "IR_J2")) == []

    def test_no_application_when_keys_do_not_flow(self):
        _, plan = _profiled_plan("IR")
        # IR_J3 re-groups on {word}, which is not part of IR_J2's key.
        assert IntraJobVerticalPacking().find_applications(plan, ("IR_J2", "IR_J3")) == []

    def test_apply_sets_postconditions(self):
        _, plan = _profiled_plan("IR")
        transformation = IntraJobVerticalPacking()
        application = transformation.find_applications(plan, ("IR_J1", "IR_J2"))[0]
        packed = transformation.apply(plan, application)
        consumer = packed.job("IR_J2").job
        producer = packed.job("IR_J1")
        assert consumer.is_map_only
        assert consumer.config.chained_input
        assert producer.job.effective_partitioner.fields == ("doc",)
        assert producer.annotations.partition_constraint is not None
        # Original plan untouched.
        assert not plan.job("IR_J2").job.is_map_only

    def test_none_to_one_application_on_sn(self):
        _, plan = _profiled_plan("SN")
        applications = IntraJobVerticalPacking().find_applications(plan, ("SN_J1",))
        assert applications and applications[0].details["case"] == "none-to-one"

    def test_packed_plan_produces_same_result(self):
        workload, plan = _profiled_plan("IR")
        transformation = IntraJobVerticalPacking()
        application = transformation.find_applications(plan, ("IR_J1", "IR_J2"))[0]
        packed = transformation.apply(plan, application)
        reference = _terminal_outputs(workload, _execute(workload.workflow, workload))
        packed_fs = _execute(packed, workload)
        for name, records in reference.items():
            assert records_equal(records, packed_fs.get(name).all_records())


class TestInterJobVerticalPacking:
    def _intra_then_inter_plan(self):
        workload, plan = _profiled_plan("IR")
        intra = IntraJobVerticalPacking()
        plan = intra.apply(plan, intra.find_applications(plan, ("IR_J1", "IR_J2"))[0])
        return workload, plan

    def test_requires_map_only_member(self):
        _, plan = _profiled_plan("IR")
        assert InterJobVerticalPacking().find_applications(plan, ("IR_J1", "IR_J2")) == []

    def test_finds_application_after_intra(self):
        _, plan = self._intra_then_inter_plan()
        applications = InterJobVerticalPacking().find_applications(plan, ("IR_J1", "IR_J2"))
        assert applications and applications[0].details["case"] == "absorb-consumer"

    def test_apply_eliminates_job_and_dataset(self):
        workload, plan = self._intra_then_inter_plan()
        inter = InterJobVerticalPacking()
        merged = inter.apply(plan, inter.find_applications(plan, ("IR_J1", "IR_J2"))[0])
        assert merged.num_jobs == 2
        assert merged.workflow.has_job("IR_J1+IR_J2")
        assert not merged.workflow.has_dataset("ir_tf")

    def test_merged_plan_produces_same_result(self):
        workload, plan = self._intra_then_inter_plan()
        inter = InterJobVerticalPacking()
        merged = inter.apply(plan, inter.find_applications(plan, ("IR_J1", "IR_J2"))[0])
        reference = _terminal_outputs(workload, _execute(workload.workflow, workload))
        merged_fs = _execute(merged, workload)
        for name, records in reference.items():
            assert records_equal(records, merged_fs.get(name).all_records())

    def test_not_applicable_when_dataset_has_other_consumers(self):
        _, plan = _profiled_plan("BA")
        intra = IntraJobVerticalPacking()
        applications = intra.find_applications(plan, ("BA_J1", "BA_J2", "BA_J3"))
        assert applications
        packed = intra.apply(plan, applications[0])
        # ba_items feeds both BA_J2 and BA_J3, so BA_J2 cannot be absorbed into BA_J1.
        inter_apps = InterJobVerticalPacking().find_applications(packed, ("BA_J1", "BA_J2", "BA_J3"))
        assert all(app.target_jobs != ("BA_J1", "BA_J2") for app in inter_apps)


class TestHorizontalPacking:
    def test_finds_shared_input_group(self):
        _, plan = _profiled_plan("PJ")
        applications = HorizontalPacking(allow_extended=False).find_applications(
            plan, ("PJ_J2", "PJ_J3")
        )
        assert len(applications) == 1
        assert set(applications[0].target_jobs) == {"PJ_J2", "PJ_J3"}

    def test_extended_group_for_disjoint_inputs(self):
        _, plan = _profiled_plan("BR")
        applications = HorizontalPacking(allow_extended=True).find_applications(
            plan, ("BR_J6", "BR_J7")
        )
        assert any(app.details["extended"] for app in applications)

    def test_does_not_pack_dependent_jobs(self):
        _, plan = _profiled_plan("IR")
        assert HorizontalPacking().find_applications(plan, ("IR_J1", "IR_J2")) == []

    def test_apply_merges_pipelines_and_outputs(self):
        workload, plan = _profiled_plan("PJ")
        transformation = HorizontalPacking(allow_extended=False)
        application = transformation.find_applications(plan, ("PJ_J2", "PJ_J3"))[0]
        packed = transformation.apply(plan, application)
        merged_name = "+".join(application.target_jobs)
        merged = packed.job(merged_name).job
        assert len(merged.pipelines) == 2
        assert set(merged.output_datasets) == {"pj_cov", "pj_corr"}

    def test_packed_plan_produces_same_result(self):
        workload, plan = _profiled_plan("PJ")
        transformation = HorizontalPacking(allow_extended=False)
        application = transformation.find_applications(plan, ("PJ_J2", "PJ_J3"))[0]
        packed = transformation.apply(plan, application)
        reference = _terminal_outputs(workload, _execute(workload.workflow, workload))
        packed_fs = _execute(packed, workload)
        for name, records in reference.items():
            assert records_equal(records, packed_fs.get(name).all_records())

    def test_packed_plan_with_coarse_grouping_is_correct(self):
        """BR after vertical packing: the packed job keeps {orderid} co-located."""
        workload, plan = _profiled_plan("BR")
        intra = IntraJobVerticalPacking()
        inter = InterJobVerticalPacking()
        for consumer in ("BR_J4", "BR_J5"):
            apps = intra.find_applications(plan, ("BR_J2", "BR_J3", "BR_J4", "BR_J5"))
            app = [a for a in apps if consumer in a.target_jobs][0]
            plan = intra.apply(plan, app)
        for pair in (("BR_J2", "BR_J4"), ("BR_J3", "BR_J5")):
            apps = inter.find_applications(plan, ("BR_J2", "BR_J3", "BR_J4", "BR_J5"))
            app = [a for a in apps if a.target_jobs == pair][0]
            plan = inter.apply(plan, app)
        horizontal = HorizontalPacking(allow_extended=False)
        apps = horizontal.find_applications(plan, ("BR_J2+BR_J4", "BR_J3+BR_J5"))
        assert apps
        packed = horizontal.apply(plan, apps[0])
        merged = packed.job("BR_J2+BR_J4+BR_J3+BR_J5").job
        assert merged.effective_partitioner.fields == ("orderid",)
        reference = _terminal_outputs(workload, _execute(workload.workflow, workload))
        packed_fs = _execute(packed, workload)
        for name, records in reference.items():
            assert records_equal(records, packed_fs.get(name).all_records())

    def test_chained_jobs_are_not_packed(self):
        _, plan = _profiled_plan("BA")
        intra = IntraJobVerticalPacking()
        apps = intra.find_applications(plan, ("BA_J1", "BA_J2", "BA_J3"))
        plan = intra.apply(plan, apps[0])
        applications = HorizontalPacking(allow_extended=False).find_applications(
            plan, ("BA_J2", "BA_J3")
        )
        assert applications == []


class TestPartitionFunctionTransformation:
    def test_enables_pruning_for_us_consumers(self):
        workload, plan = _profiled_plan("US")
        transformation = PartitionFunctionTransformation()
        applications = [
            a
            for a in transformation.find_applications(plan, ("US_J1", "US_J2", "US_J3"))
            if a.details.get("case") != "base-dataset-pruning"
        ]
        assert applications
        transformed = transformation.apply(plan, applications[0])
        producer = transformed.job("US_J1").job
        assert producer.effective_partitioner.kind == "range"
        young = transformed.job("US_J2").job.pipelines[0]
        assert young.allowed_partitions("us_sessions") is not None

    def test_pruned_plan_produces_same_result(self):
        workload, plan = _profiled_plan("US")
        transformation = PartitionFunctionTransformation()
        applications = transformation.find_applications(plan, ("US_J1", "US_J2", "US_J3"))
        transformed = plan
        for application in applications:
            transformed = transformation.apply(transformed, application)
        reference = _terminal_outputs(workload, _execute(workload.workflow, workload))
        pruned_fs = _execute(transformed, workload)
        for name, records in reference.items():
            assert records_equal(records, pruned_fs.get(name).all_records())

    def test_base_dataset_pruning_for_la(self):
        workload, plan = _profiled_plan("LA")
        transformation = PartitionFunctionTransformation()
        applications = [
            a
            for a in transformation.find_applications(plan, ("LA_J1",))
            if a.details.get("case") == "base-dataset-pruning"
        ]
        assert applications
        pruned = transformation.apply(plan, applications[0])
        pipeline = pruned.job("LA_J1").job.pipelines[0]
        allowed = pipeline.allowed_partitions("uservisits")
        assert allowed is not None and len(allowed) < 13

    def test_respects_partition_constraint(self):
        _, plan = _profiled_plan("US")
        from repro.mapreduce.partitioner import PartitionFunction

        constraint = PartitionFunction(kind="hash", fields=("userid",), sort_fields=("userid",))
        plan.job("US_J1").annotations.partition_constraint = constraint
        applications = [
            a
            for a in PartitionFunctionTransformation().find_applications(plan, ("US_J1", "US_J2", "US_J3"))
            if a.details.get("case") != "base-dataset-pruning"
        ]
        assert applications == []


class TestConfigurationTransformation:
    def test_apply_changes_config(self):
        _, plan = _profiled_plan("IR")
        application = ConfigurationTransformation.application_for(
            "IR_J1", {"num_reduce_tasks": 55, "compress_map_output": True}
        )
        changed = ConfigurationTransformation().apply(plan, application)
        config = changed.job("IR_J1").job.config
        assert config.num_reduce_tasks == 55 and config.compress_map_output
        assert plan.job("IR_J1").job.config.num_reduce_tasks != 55

    def test_find_applications_is_empty(self):
        _, plan = _profiled_plan("IR")
        assert ConfigurationTransformation().find_applications(plan, ("IR_J1",)) == []

    def test_rule_of_thumb_respects_forced_single_reduce(self):
        _, plan = _profiled_plan("SN")
        ConfigurationTransformation.rule_of_thumb_config(plan, ClusterSpec.paper_cluster())
        assert plan.job("SN_J4").job.config.num_reduce_tasks == 1
        assert plan.job("SN_J2").job.config.num_reduce_tasks > 1
