"""Property tests for the incremental topology index (see ISSUE 6).

The contract under test: every structural query of :class:`Workflow` —
``producer_of``/``consumers_of``/``producer_jobs``/``consumer_jobs``/
``base_datasets``/``terminal_datasets``/``intermediate_datasets``/
``depends_on``/``topological_order``/``topological_levels`` — answers from
the incrementally maintained adjacency index with results **bit-identical**
(same elements, same order) to the legacy brute-force scans, after *any*
sequence of mutations through the CoW surface, applied to the original
workflow and to structurally shared clones alike; and the incrementally
maintained index always equals a from-scratch rebuild over the current job
table.
"""

import random

import pytest

from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import simple_job
from repro.verification import RandomWorkflowGenerator
from repro.workflow.annotations import JobAnnotations
from repro.workflow.graph import (
    TOPOLOGY_COUNTERS,
    Workflow,
    _TopologyIndex,
    set_topology_index_enabled,
    topology_index_enabled,
)


def _identity(key, value):
    yield {}, dict(value)


def _chain_job(name, inputs, output, reduce_key=None):
    if isinstance(inputs, str):
        inputs = (inputs,)
    job = simple_job(
        name,
        inputs[0],
        output,
        _identity,
        reduce_fn=(lambda key, values: iter([(key, values[0])])) if reduce_key else None,
        group_fields=(reduce_key,) if reduce_key else (),
        config=JobConfig(num_reduce_tasks=2 if reduce_key else 0),
    )
    if len(inputs) > 1:
        job.pipelines[0].input_datasets = tuple(inputs)
    return job


def _snapshot(workflow):
    """Every structural answer of a workflow, as plain comparable data."""
    dataset_names = [d.name for d in workflow.datasets]
    job_names = workflow.job_names
    producer = {
        name: (workflow.producer_of(name).name if workflow.producer_of(name) else None)
        for name in dataset_names
    }
    consumers = {name: [c.name for c in workflow.consumers_of(name)] for name in dataset_names}
    upstream = {name: [p.name for p in workflow.producer_jobs(name)] for name in job_names}
    downstream = {name: [c.name for c in workflow.consumer_jobs(name)] for name in job_names}
    depends = {
        (a, b): workflow.depends_on(a, b) for a in job_names for b in job_names
    }
    return {
        "producer": producer,
        "consumers": consumers,
        "upstream": upstream,
        "downstream": downstream,
        "base": [d.name for d in workflow.base_datasets()],
        "terminal": [d.name for d in workflow.terminal_datasets()],
        "intermediate": [d.name for d in workflow.intermediate_datasets()],
        "order": [v.name for v in workflow.topological_order()],
        "levels": [[v.name for v in level] for level in workflow.topological_levels()],
        "depends": depends,
    }


def _scan_snapshot(workflow):
    """The same answers derived exclusively through the legacy scans."""
    dataset_names = [d.name for d in workflow.datasets]
    job_names = workflow.job_names
    producer = {
        name: (
            workflow._scan_producer_of(name).name
            if workflow._scan_producer_of(name)
            else None
        )
        for name in dataset_names
    }
    consumers = {
        name: [c.name for c in workflow._scan_consumers_of(name)] for name in dataset_names
    }
    upstream = {name: [p.name for p in workflow._scan_producer_jobs(name)] for name in job_names}
    downstream = {
        name: [c.name for c in workflow._scan_consumer_jobs(name)] for name in job_names
    }
    depends = {
        (a, b): workflow._scan_depends_on(a, b) for a in job_names for b in job_names
    }
    return {
        "producer": producer,
        "consumers": consumers,
        "upstream": upstream,
        "downstream": downstream,
        "base": [d.name for d in workflow._scan_base_datasets()],
        "terminal": [d.name for d in workflow._scan_terminal_datasets()],
        "intermediate": [d.name for d in workflow._scan_intermediate_datasets()],
        "order": [v.name for v in workflow._scan_topological_order()],
        "levels": [[v.name for v in level] for level in workflow._scan_topological_levels()],
        "depends": depends,
    }


def _assert_index_consistent(workflow):
    """Indexed answers == legacy scans, and the index == a fresh rebuild."""
    assert _snapshot(workflow) == _scan_snapshot(workflow)
    maintained = workflow._topology()
    rebuilt = _TopologyIndex.build(workflow._jobs)
    assert maintained.producers == rebuilt.producers
    assert maintained.consumers == rebuilt.consumers
    # Relative order of the maintained keys must equal job insertion order.
    keys = maintained.order_keys
    assert sorted(keys, key=keys.__getitem__) == workflow.job_names


def _build_base(num_jobs=6):
    workflow = Workflow("prop")
    workflow.add_job(_chain_job("J0", "SRC", "D0", reduce_key="k"))
    for index in range(1, num_jobs):
        workflow.add_job(_chain_job(f"J{index}", f"D{index - 1}", f"D{index}"))
    return workflow


class TestRandomMutationSequences:
    """Any mutation sequence, on the original and CoW clones alike."""

    @pytest.mark.parametrize("seed", range(8))
    def test_incremental_index_equals_rebuild_after_random_mutations(self, seed):
        rng = random.Random(seed)
        workflows = [_build_base(num_jobs=rng.randint(3, 7))]
        counter = [100 * seed]

        def fresh_name(prefix):
            counter[0] += 1
            return f"{prefix}{counter[0]}"

        def op_add(w):
            inputs = rng.choice([d.name for d in w.datasets])
            w.add_job(_chain_job(fresh_name("A"), inputs, fresh_name("out")))

        def op_remove(w):
            if w.num_jobs <= 1:
                return
            w.remove_job(rng.choice(w.job_names))

        def op_replace(w):
            victim = rng.choice(w.job_names)
            old = w.job(victim).job
            # Reading the victim's own inputs keeps the graph acyclic.
            output = rng.choice([old.output_datasets[0], fresh_name("rep")])
            w.replace_job(victim, _chain_job(fresh_name("R"), old.input_datasets, output))

        def op_update_config(w):
            name = rng.choice(w.job_names)
            w.update_job(
                name,
                lambda job: job.with_config(
                    job.config.replace(num_reduce_tasks=rng.randint(0, 6))
                ),
            )

        def op_update_edges(w):
            name = rng.choice(w.job_names)
            base = [d.name for d in w.base_datasets()]
            if not base:
                return
            new_input = rng.choice(base)
            old = w.job(name).job
            w.update_job(
                name, lambda job: _chain_job(name, new_input, old.output_datasets[0])
            )

        def op_mutate(w):
            name = rng.choice(w.job_names)
            vertex = w.mutate_job(name, copy_job=False)
            vertex.annotations.conditions[fresh_name("c")] = True

        def op_prune(w):
            w.prune_orphan_datasets()

        def op_copy(w):
            if len(workflows) < 4:
                workflows.append(w.copy())

        ops = [
            op_add, op_add, op_remove, op_replace, op_update_config,
            op_update_edges, op_mutate, op_prune, op_copy,
        ]
        for _ in range(30):
            target = rng.choice(workflows)
            rng.choice(ops)(target)
            _assert_index_consistent(target)
        for workflow in workflows:
            _assert_index_consistent(workflow)

    @pytest.mark.parametrize("seed", (11, 23))
    def test_generated_workflows_agree_with_scans(self, seed):
        generator = RandomWorkflowGenerator().with_config(
            min_jobs=6, max_jobs=10, profile=False
        )
        _assert_index_consistent(generator.generate(seed).workflow)
        _assert_index_consistent(generator.diamond_shared_sink(seed).workflow)
        _assert_index_consistent(generator.wide_fanout(seed, num_jobs=20).workflow)
        _assert_index_consistent(
            generator.telemetry_rollup(seed, num_channels=20, fanin=6).workflow
        )

    def test_disabled_index_answers_identically(self):
        generator = RandomWorkflowGenerator().with_config(profile=False)
        workflow = generator.telemetry_rollup(5, num_channels=12, fanin=4).workflow
        indexed = _snapshot(workflow)
        previous = set_topology_index_enabled(False)
        try:
            assert not topology_index_enabled()
            assert _snapshot(workflow) == indexed
        finally:
            set_topology_index_enabled(previous)


class TestCounterContracts:
    """The index is built once, updated incrementally, shared across CoW."""

    def test_config_only_mutations_keep_the_cached_topology(self):
        workflow = _build_base()
        workflow.topological_levels()  # build index + caches
        TOPOLOGY_COUNTERS.reset()
        clone = workflow.copy()
        clone.topological_levels()  # shared warm cache
        clone.update_job(
            "J2", lambda job: job.with_config(job.config.replace(num_reduce_tasks=5))
        )
        clone.mutate_job("J3", copy_job=False).annotations.conditions["x"] = True
        clone.topological_levels()
        clone.topological_order()
        snapshot = TOPOLOGY_COUNTERS.snapshot()
        assert snapshot["index_builds"] == 0
        assert snapshot["index_copies"] == 0
        assert snapshot["incremental_updates"] == 0
        assert snapshot["toposort_builds"] == 0
        assert snapshot["toposort_cache_hits"] == 3
        assert snapshot["full_scans"] == 0

    def test_structural_mutation_privatizes_and_updates_incrementally(self):
        workflow = _build_base()
        workflow.topological_levels()
        TOPOLOGY_COUNTERS.reset()
        clone = workflow.copy()
        clone.replace_job("J2", _chain_job("J2b", "D1", "D2"))
        snapshot = TOPOLOGY_COUNTERS.snapshot()
        assert snapshot["index_copies"] == 1  # privatized once...
        assert snapshot["incremental_updates"] == 1  # ...then patched in place
        assert snapshot["index_builds"] == 0  # never rebuilt from scratch
        clone.remove_job("J5")
        clone.add_job(_chain_job("J6", "D4", "D6"))
        snapshot = TOPOLOGY_COUNTERS.snapshot()
        assert snapshot["index_copies"] == 1  # already private: no more copies
        assert snapshot["incremental_updates"] == 3
        # The clone re-sorts; the original's cached topology is untouched.
        clone.topological_order()
        workflow.topological_order()
        snapshot = TOPOLOGY_COUNTERS.snapshot()
        assert snapshot["toposort_builds"] == 1
        assert snapshot["toposort_cache_hits"] == 1
        _assert_index_consistent(clone)
        _assert_index_consistent(workflow)

    def test_costing_a_candidate_does_not_rebuild_the_index(self):
        """The search hot loop: copy, reconfigure one job, re-walk topology."""
        workflow = _build_base()
        workflow.topological_levels()
        TOPOLOGY_COUNTERS.reset()
        for sample in range(10):
            candidate = workflow.copy()
            candidate.update_job(
                "J1",
                lambda job: job.with_config(job.config.replace(num_reduce_tasks=sample + 1)),
            )
            candidate.topological_levels()
            candidate.base_datasets()
        snapshot = TOPOLOGY_COUNTERS.snapshot()
        assert snapshot["index_builds"] == 0
        assert snapshot["index_copies"] == 0
        assert snapshot["toposort_builds"] == 0
        assert snapshot["full_scans"] == 0
        assert snapshot["toposort_cache_hits"] == 10
