"""Property-based tests for the differential comparator's foundations.

The differential harness is only as trustworthy as (a) the record
canonicalization it compares with and (b) the seeded RNG substreams the
workflow generator derives its structure and data from.  Both are pinned
down here with seeded Hypothesis properties (no new dependencies).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.records import (
    canonical_record,
    canonicalize,
    diff_record_multisets,
    record_multiset,
    records_equal,
)
from repro.common.rng import DeterministicRNG

# Values that survive canonicalization without float-precision edge cases.
_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(min_value=-1000.0, max_value=1000.0, allow_nan=False, allow_infinity=False),
    st.text(max_size=8),
)
_records = st.lists(
    st.dictionaries(st.sampled_from(["k", "g", "x", "y", "n"]), _values, max_size=5),
    max_size=12,
)


class TestCanonicalizationProperties:
    @given(_records, st.randoms(use_true_random=False))
    def test_multiset_is_order_insensitive(self, records, shuffler):
        shuffled = list(records)
        shuffler.shuffle(shuffled)
        assert record_multiset(records) == record_multiset(shuffled)
        assert records_equal(records, shuffled)

    @given(_records)
    def test_diff_of_identical_collections_is_empty(self, records):
        missing, extra = diff_record_multisets(records, list(records))
        assert missing == [] and extra == []

    @given(_records, st.dictionaries(st.sampled_from(["k", "x"]), _values, min_size=1, max_size=2))
    def test_dropped_record_is_reported_missing(self, records, dropped):
        left = records + [dropped]
        missing, extra = diff_record_multisets(left, records)
        assert len(missing) == 1 and extra == []
        assert canonical_record(missing[0], 6) == canonical_record(dropped, 6)

    @given(st.integers(min_value=-10**6, max_value=10**6))
    def test_integral_floats_collapse_to_ints(self, n):
        assert canonicalize(float(n)) == canonicalize(n)
        assert records_equal([{"a": float(n)}], [{"a": n}])

    @given(st.floats(min_value=-900.0, max_value=900.0, allow_nan=False))
    def test_field_order_is_irrelevant(self, x):
        assert canonical_record({"a": x, "b": "s"}) == canonical_record({"b": "s", "a": x})

    @given(st.floats(min_value=-900.0, max_value=900.0, allow_nan=False))
    def test_tolerance_absorbs_accumulation_noise(self, x):
        # Perturbations far below the tolerance never split a record pair...
        noisy = x + 1e-9
        missing, extra = diff_record_multisets(
            [{"v": x}], [{"v": noisy}], float_digits=6, float_atol=1e-6
        )
        assert missing == [] and extra == []

    @given(st.floats(min_value=-900.0, max_value=900.0, allow_nan=False))
    def test_tolerance_still_separates_real_differences(self, x):
        # ...while differences well above it are always reported.
        missing, extra = diff_record_multisets(
            [{"v": x}], [{"v": x + 0.01}], float_digits=6, float_atol=1e-6
        )
        assert len(missing) == 1 and len(extra) == 1

    def test_type_tags_keep_heterogeneous_values_apart(self):
        assert canonicalize(True) != canonicalize(1)
        assert canonicalize(None) != canonicalize("")
        assert canonicalize("1") != canonicalize(1)

    @given(st.integers(min_value=2**53, max_value=2**60), st.integers(min_value=1, max_value=1000))
    def test_tolerance_never_swallows_integer_divergences(self, big, delta):
        # Ints above 2**53 collapse under float(); the reconciliation pass
        # must compare them exactly, not through the float tolerance.
        missing, extra = diff_record_multisets([{"a": big}], [{"a": big + delta}])
        assert len(missing) == 1 and len(extra) == 1


class TestRngSubstreamProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1), st.text(min_size=1, max_size=12))
    def test_fork_is_deterministic(self, seed, label):
        a = DeterministicRNG(seed).fork(label)
        b = DeterministicRNG(seed).fork(label)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=0, max_value=20),
    )
    def test_substreams_are_insulated_from_sibling_draws(self, seed, sibling_draws):
        """Draws on one fork never shift the stream another fork sees."""
        quiet = DeterministicRNG(seed)
        noisy = DeterministicRNG(seed)
        noisy_sibling = noisy.fork("sibling")
        for _ in range(sibling_draws):
            noisy_sibling.random()
            noisy.random()  # parent draws must not leak either
        assert [quiet.fork("probe").random() for _ in range(3)] == [
            noisy.fork("probe").random() for _ in range(3)
        ]

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_distinct_labels_give_distinct_streams(self, seed):
        rng = DeterministicRNG(seed)
        a = [rng.fork("alpha").random() for _ in range(3)]
        b = [rng.fork("beta").random() for _ in range(3)]
        assert a != b

    @given(st.integers(min_value=0, max_value=2**31 - 1), st.text(min_size=1, max_size=8))
    def test_fork_label_order_does_not_matter(self, seed, label):
        """Forking is a pure function of (seed, label), not of fork order."""
        rng1 = DeterministicRNG(seed)
        rng1.fork("other")
        late = rng1.fork(label)
        early = DeterministicRNG(seed).fork(label)
        assert late.random() == early.random()

    def test_fork_streams_are_stable_across_processes(self):
        """Pin the derived seed: built-in hash() salting must not leak in.

        If this fails, DeterministicRNG.fork went back to a per-process hash
        and 'reproduce the divergence from seed S' silently broke.
        """
        assert DeterministicRNG(0).fork("x").seed == DeterministicRNG(0).fork("x").seed
        pinned = DeterministicRNG(0).fork("x").seed
        assert pinned == 35557987, (
            "fork() seed derivation changed; update this pin only if the "
            "change is intentional and process-independent"
        )
