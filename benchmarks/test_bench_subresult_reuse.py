"""Sub-result reuse benchmark: repeated traffic (BENCH_subresult_reuse.json).

Simulates the ReStore scenario — a stream of related workflows arriving in
waves over one shared :class:`~repro.core.subresults.SubResultCatalog`:

1. **wave 1 (cold producers)** — fresh shared-prefix workflows are
   optimized against an empty catalog, executed, and their intermediates
   registered.  Every probe misses: hit rate 0.
2. **wave 2 (mixed)** — the sibling workflows of wave 1 arrive (their
   prefixes are warm: hits) alongside brand-new producers (cold: misses).
   Hit rate strictly between 0 and 1.
3. **wave 3 (replay)** — every sibling workflow arrives again; by now all
   prefixes are registered and every probe hits: hit rate 1.

Contracts enforced **everywhere** (counter-based, independent of host
speed):

* hit rates strictly increase across waves (0 → mixed → 1);
* the warm waves serve cross-origin hits (entries an earlier wave paid
  for) and eliminate producing-cone jobs from winning plans;
* **exact reconciliation** — the catalog's global counters equal the sum
  of the per-wave attribution sinks, to the counter;
* the reuse plans' estimated makespan never exceeds the recompute plans'
  (the rewrite is cost-arbitrated against a candidate superset) and saves
  a strictly positive total.

Wall-clock *execution* speedup (recompute plans vs reuse plans of the
replay wave) is recorded honestly everywhere but only asserted on hosts
with more than 4 usable CPUs — ``BENCH_SUBRESULT_ENFORCE=always``/``never``
overrides the policy and ``BENCH_SUBRESULT_MIN_SPEEDUP`` (default 1.2)
sets the bar.
"""

import json
import os
import time

from conftest import run_once

from repro.core.optimizer import StubbyOptimizer
from repro.core.subresults import (
    SubResultCatalog,
    SubResultCatalogStats,
    register_workflow_outputs,
)
from repro.verification.generator import RandomWorkflowGenerator
from repro.workflow.executor import WorkflowExecutor

WAVE1_SEEDS = (11, 12, 13, 14)
WAVE2_NEW_SEEDS = (15, 16)
ALL_SEEDS = WAVE1_SEEDS + WAVE2_NEW_SEEDS


def _output_path():
    return os.environ.get("BENCH_SUBRESULT_REUSE_OUT", "BENCH_subresult_reuse.json")


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _min_speedup() -> float:
    return float(os.environ.get("BENCH_SUBRESULT_MIN_SPEEDUP", "1.2"))


def _speedup_enforced(cpus: int) -> bool:
    policy = os.environ.get("BENCH_SUBRESULT_ENFORCE", "auto").strip().lower()
    if policy == "always":
        return True
    if policy == "never":
        return False
    return cpus > 4


def _execute(workflow, base_datasets, collect=False):
    return WorkflowExecutor().execute(workflow, base_datasets, collect_outputs=collect)


def _register(catalog, generated, origin):
    result, _fs = _execute(generated.workflow.copy(), generated.base_datasets, collect=True)
    outputs = {}
    for per_job in result.job_outputs.values():
        outputs.update(per_job)
    return register_workflow_outputs(
        catalog, generated.workflow, outputs, origin=origin
    )


def _optimize(cluster, catalog, generated):
    """One tenant request: optimize against the shared catalog and credit
    the eliminated jobs exactly like the harness/server do."""
    result = StubbyOptimizer(cluster, subresult_catalog=catalog).optimize(generated.plan)
    if result.jobs_eliminated_by_reuse:
        catalog.record_jobs_eliminated(result.jobs_eliminated_by_reuse)
    return result


def _wave_row(sink, results):
    return {
        "requests": len(results),
        "hits": sink.hits,
        "misses": sink.misses,
        "cross_origin_hits": sink.cross_origin_hits,
        "stores": sink.stores,
        "hit_rate": round(sink.hit_rate, 4),
        "reuse_applications": sum(r.subresult_reuse_applications for r in results),
        "jobs_eliminated": sum(r.jobs_eliminated_by_reuse for r in results),
        "plan_jobs": sum(len(r.plan.workflow.jobs) for r in results),
        "estimated_makespan_s": round(sum(r.estimated_cost_s for r in results), 4),
    }


def test_bench_subresult_reuse(benchmark, cluster):
    generator = RandomWorkflowGenerator()
    pairs = {seed: generator.shared_prefix_pair(seed) for seed in ALL_SEEDS}

    def run_all():
        catalog = SubResultCatalog(cluster)
        sinks, wave_results = [], []

        # Wave 1: cold producers — optimize, execute, register.
        sink = SubResultCatalogStats()
        results = []
        with catalog.origin("wave-1"), catalog.attribute_to(sink):
            for seed in WAVE1_SEEDS:
                first, _second = pairs[seed]
                results.append(_optimize(cluster, catalog, first))
                _register(catalog, first, origin="wave-1")
        sinks.append(sink)
        wave_results.append(results)

        # Wave 2: warm siblings mixed with brand-new cold producers.
        sink = SubResultCatalogStats()
        results = []
        with catalog.origin("wave-2"), catalog.attribute_to(sink):
            for seed in WAVE1_SEEDS:
                results.append(_optimize(cluster, catalog, pairs[seed][1]))
            for seed in WAVE2_NEW_SEEDS:
                first, _second = pairs[seed]
                results.append(_optimize(cluster, catalog, first))
                _register(catalog, first, origin="wave-2")
        sinks.append(sink)
        wave_results.append(results)

        # Wave 3: full replay of every sibling — everything is warm now.
        sink = SubResultCatalogStats()
        results = []
        with catalog.origin("wave-3"), catalog.attribute_to(sink):
            for seed in ALL_SEEDS:
                results.append(_optimize(cluster, catalog, pairs[seed][1]))
        sinks.append(sink)
        wave_results.append(results)

        # Recompute reference for the replay wave: the same workflows
        # optimized with no catalog at all.
        cold_results = [
            StubbyOptimizer(cluster).optimize(pairs[seed][1].plan) for seed in ALL_SEEDS
        ]

        # Execution wall clock: recompute plans vs reuse plans.
        started = time.perf_counter()
        for result, seed in zip(cold_results, ALL_SEEDS):
            _execute(result.plan.workflow, pairs[seed][1].base_datasets)
        cold_exec_s = time.perf_counter() - started
        started = time.perf_counter()
        for result, seed in zip(wave_results[2], ALL_SEEDS):
            _execute(result.plan.workflow, pairs[seed][1].base_datasets)
        warm_exec_s = time.perf_counter() - started

        return catalog, sinks, wave_results, cold_results, cold_exec_s, warm_exec_s

    catalog, sinks, wave_results, cold_results, cold_exec_s, warm_exec_s = run_once(
        benchmark, run_all
    )
    rows = [_wave_row(sink, results) for sink, results in zip(sinks, wave_results)]

    # Contract 1: strictly increasing hit rate — cold, mixed, full replay.
    # (Even a fully warm wave is not 1.0: the search probes intermediate
    # candidate plans — e.g. after a packing rewrite — whose mutated
    # subgraphs legitimately miss.)
    assert rows[0]["hit_rate"] == 0.0
    assert rows[0]["hit_rate"] < rows[1]["hit_rate"] < rows[2]["hit_rate"]
    assert rows[2]["hit_rate"] >= 0.5
    assert 0 < rows[1]["misses"]

    # Contract 2: the warm waves reuse across workflows and eliminate jobs.
    assert rows[1]["cross_origin_hits"] > 0
    assert rows[2]["cross_origin_hits"] > 0
    warm_jobs_eliminated = rows[1]["jobs_eliminated"] + rows[2]["jobs_eliminated"]
    assert warm_jobs_eliminated >= 1
    assert rows[0]["jobs_eliminated"] == 0

    # Contract 3: exact reconciliation — global counters equal the summed
    # per-wave sinks, to the counter.
    total = SubResultCatalogStats()
    for sink in sinks:
        total.accumulate(sink)
    snapshot = catalog.stats_snapshot()
    assert snapshot.as_dict() == total.as_dict()
    assert snapshot.jobs_eliminated == sum(row["jobs_eliminated"] for row in rows)

    # Contract 4: reuse is cost-arbitrated over a candidate superset — the
    # replay wave's estimated makespan never exceeds the recompute plans'.
    cold_makespan = sum(r.estimated_cost_s for r in cold_results)
    warm_makespan = rows[2]["estimated_makespan_s"]
    assert warm_makespan <= cold_makespan + 1e-9
    # Reuse plans run strictly fewer jobs than the recompute plans.  (Job
    # counts do not reconcile 1:1 against the cold baseline — each search
    # also packs jobs, differently on each side — the exact ledger is the
    # counter reconciliation of contract 3.)
    cold_jobs = sum(len(r.plan.workflow.jobs) for r in cold_results)
    assert rows[2]["plan_jobs"] < cold_jobs
    assert warm_makespan < cold_makespan  # eliminated jobs save real time

    cpus = _usable_cpus()
    speedup = cold_exec_s / max(warm_exec_s, 1e-9)
    speedup_enforced = _speedup_enforced(cpus)

    payload = {
        "benchmark": "subresult_reuse",
        "seeds": list(ALL_SEEDS),
        "usable_cpus": cpus,
        "waves": {f"wave{i + 1}": row for i, row in enumerate(rows)},
        "catalog_entries": catalog.catalog_size,
        "total_stats": snapshot.as_dict(),
        "replay_makespan_s": round(warm_makespan, 4),
        "recompute_makespan_s": round(cold_makespan, 4),
        "makespan_saved_s": round(cold_makespan - warm_makespan, 4),
        "recompute_exec_s": round(cold_exec_s, 4),
        "replay_exec_s": round(warm_exec_s, 4),
        "exec_speedup": round(speedup, 3),
        "speedup_enforced": speedup_enforced,
        "min_speedup": _min_speedup(),
    }
    with open(_output_path(), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    print(f"\nSub-result reuse, {len(ALL_SEEDS)} workflow pairs ({cpus} usable CPU(s))")
    print("wave    reqs  hits  misses  x-origin  reuse  jobs-elim  hit_rate  est_s")
    for index, row in enumerate(rows):
        print(
            f"wave {index + 1}  {row['requests']:>4} {row['hits']:>5} "
            f"{row['misses']:>7} {row['cross_origin_hits']:>9} "
            f"{row['reuse_applications']:>6} {row['jobs_eliminated']:>10} "
            f"{row['hit_rate']:>8.2f} {row['estimated_makespan_s']:>7.2f}"
        )
    print(
        f"makespan {cold_makespan:.2f}s -> {warm_makespan:.2f}s, "
        f"execution speedup {speedup:.2f}x"
    )

    if speedup_enforced:
        assert speedup >= _min_speedup(), (
            f"replay execution reached only {speedup:.2f}x over recompute on "
            f"{cpus} CPUs (required {_min_speedup():.1f}x); see {_output_path()}"
        )
    assert os.path.exists(_output_path())
