"""Optimization-overhead benchmark for the incremental cost service.

Runs the full Stubby optimizer on every canned workload and records, per
workload, the optimizer wall time and the cost-service counters (what-if
queries, full-depth computations, cache hit/reuse rates).  The result is
written to ``BENCH_cost_service.json`` (path overridable through the
``BENCH_COST_SERVICE_OUT`` environment variable) so CI can archive the perf
trajectory of the optimizer stack across PRs.

The assertions double as the service's performance contract: per
``optimize()`` the service must perform at least 5x fewer full-workflow
what-if computations than the pre-refactor engine, which computed every
query cold.
"""

import json
import os
import time

from conftest import BENCHMARK_SCALE, run_once

from repro.core.optimizer import StubbyOptimizer
from repro.profiler import Profiler
from repro.workloads import WORKLOAD_ORDER, build_workload


def _output_path():
    return os.environ.get("BENCH_COST_SERVICE_OUT", "BENCH_cost_service.json")


def test_bench_cost_service(benchmark, cluster):
    def run_all():
        rows = {}
        for abbr in WORKLOAD_ORDER:
            workload = build_workload(abbr, scale=BENCHMARK_SCALE)
            Profiler().profile_workflow(workload.workflow, workload.base_datasets)
            started = time.perf_counter()
            result = StubbyOptimizer(cluster, seed=17).optimize(workload.plan)
            wall_s = time.perf_counter() - started
            stats = result.cost_stats
            rows[abbr] = {
                "optimizer_wall_s": round(wall_s, 4),
                "optimization_time_s": round(result.optimization_time_s, 4),
                "estimated_cost_s": result.estimated_cost_s,
                "num_jobs": result.num_jobs,
                **stats.as_dict(),
            }
        return rows

    rows = run_once(benchmark, run_all)

    payload = {
        "benchmark": "cost_service_optimization_overhead",
        "scale": BENCHMARK_SCALE,
        "workloads": rows,
    }
    with open(_output_path(), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    print("\nCost-service optimization overhead (per optimize())")
    print("workload  wall_s  whatif_q  full  eff_full  hit_rate  reuse_rate")
    for abbr, row in rows.items():
        print(
            f"{abbr:<9} {row['optimizer_wall_s']:>6.2f} {row['queries']:>9.0f} "
            f"{row['full_estimates']:>5.0f} {row['effective_full_estimates']:>9.1f} "
            f"{row['cache_hit_rate']:>9.2f} {row['reuse_rate']:>10.2f}"
        )

    for abbr, row in rows.items():
        assert row["queries"] > 0, abbr
        # The performance contract: >=5x fewer full-workflow computations
        # than the pre-refactor cold engine (one per query), both by the
        # strict zero-reuse count and job-weighted.
        assert row["full_estimates"] * 5 <= row["queries"], abbr
        assert row["effective_full_estimates"] * 5 <= row["queries"], abbr
        assert row["optimizer_wall_s"] < 120.0, abbr
    assert os.path.exists(_output_path())
