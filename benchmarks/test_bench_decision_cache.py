"""Decision-memoization benchmark: repeated workloads (BENCH_decision_cache.json).

Optimizes the same profiled workloads three times:

1. **cache off** — the reference: the full enumerate/compose/RRS search for
   every optimization unit, decision cache disabled;
2. **cold** — the same search with the decision cache enabled but empty
   (this pass records every unit's winning chain and persists the store);
3. **warm** — the same workloads again on a fresh cache warm-started from
   the persisted file: every unit replays its recorded decision and the
   search is skipped entirely.

The result is written to ``BENCH_decision_cache.json`` (path overridable
through ``BENCH_DECISION_CACHE_OUT``) so CI can archive the perf trajectory
across PRs.

Contracts enforced **everywhere** (counter-based, independent of host
speed):

* **identity** — all three passes produce bit-identical plans per workload
  (same structural signature, same per-job configurations);
* **skipped search** — the warm pass answers every unit from the cache
  (hits == the cold pass's misses, zero misses), issues at least 5x fewer
  what-if queries than the cold pass (exactly one per workload: the final
  whole-plan estimate), and runs at least 5x fewer RRS objective
  evaluations (exactly zero).

Wall-clock speedup (cold / warm) is recorded honestly everywhere but only
*asserted* on hosts with more than 4 usable CPUs, where timing noise is
low enough for a fair gate — ``BENCH_DECISION_ENFORCE=always`` / ``never``
overrides the policy and ``BENCH_DECISION_MIN_SPEEDUP`` (default 2.0) sets
the bar.
"""

import json
import os
import time

from conftest import BENCHMARK_SCALE, run_once

from repro.core.decision_cache import DecisionCache
from repro.core.optimizer import StubbyOptimizer
from repro.core.search import StubbySearch
from repro.profiler import Profiler
from repro.workloads import build_workload

WORKLOADS = ("PJ", "BR", "IR")


def _output_path():
    return os.environ.get("BENCH_DECISION_CACHE_OUT", "BENCH_decision_cache.json")


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _min_speedup() -> float:
    return float(os.environ.get("BENCH_DECISION_MIN_SPEEDUP", "2.0"))


def _speedup_enforced(cpus: int) -> bool:
    policy = os.environ.get("BENCH_DECISION_ENFORCE", "auto").strip().lower()
    if policy == "always":
        return True
    if policy == "never":
        return False
    return cpus > 4


def _rrs_evaluations(result) -> int:
    return sum(
        record.rrs_evaluations
        for report in result.unit_reports
        for record in report.subplans
    )


def _sweep(cluster, plans, cache_factory):
    """Optimize every plan once; return (elapsed_s, per-workload rows)."""
    rows = {}
    started = time.perf_counter()
    for name, plan in plans.items():
        optimizer = StubbyOptimizer(cluster, decision_cache=cache_factory())
        result = optimizer.optimize(plan)
        rows[name] = {
            "fingerprint": StubbySearch._plan_decision_fingerprint(result.plan),
            "queries": result.whatif_queries,
            "rrs_evaluations": _rrs_evaluations(result),
            "decision_hits": result.unit_decision_hits,
            "decision_misses": result.unit_decision_misses,
            "estimated_cost_s": result.estimated_cost_s,
        }
    return time.perf_counter() - started, rows


def _totals(rows):
    return {
        key: sum(row[key] for row in rows.values())
        for key in ("queries", "rrs_evaluations", "decision_hits", "decision_misses")
    }


def _json_row(rows, elapsed_s):
    totals = _totals(rows)
    totals["wall_s"] = round(elapsed_s, 4)
    return totals


def test_bench_decision_cache(benchmark, cluster, tmp_path):
    cache_path = str(tmp_path / "decisions.cache")

    plans = {}
    for name in WORKLOADS:
        workload = build_workload(name, scale=BENCHMARK_SCALE)
        Profiler().profile_workflow(workload.workflow, workload.base_datasets)
        plans[name] = workload.plan

    def run_all():
        off_s, off = _sweep(
            cluster, plans, lambda: DecisionCache(cluster, enabled=False)
        )
        shared = DecisionCache(cluster, enabled=True, cache_path=cache_path)
        cold_s, cold = _sweep(cluster, plans, lambda: shared)
        shared.save_cache()
        # The warm pass starts from a *fresh* cache loaded off disk, so the
        # measured win includes the persistence round trip.
        warmed = DecisionCache(cluster, enabled=True, cache_path=cache_path)
        assert warmed.last_load is not None and warmed.last_load.loaded
        warm_s, warm = _sweep(cluster, plans, lambda: warmed)
        return (off_s, off), (cold_s, cold), (warm_s, warm)

    (off_s, off), (cold_s, cold), (warm_s, warm) = run_once(benchmark, run_all)

    # Contract 1: identity — cache off, cold, and warm all pick the same plan.
    for name in WORKLOADS:
        assert cold[name]["fingerprint"] == off[name]["fingerprint"], name
        assert warm[name]["fingerprint"] == off[name]["fingerprint"], name
        assert warm[name]["estimated_cost_s"] == off[name]["estimated_cost_s"], name

    # Contract 2: skipped search, counter-based (asserted on every host).
    off_totals, cold_totals, warm_totals = _totals(off), _totals(cold), _totals(warm)
    assert off_totals["decision_hits"] == off_totals["decision_misses"] == 0
    assert cold_totals["decision_hits"] == 0
    assert cold_totals["decision_misses"] > 0
    assert warm_totals["decision_hits"] == cold_totals["decision_misses"]
    assert warm_totals["decision_misses"] == 0
    # Every unit replays: the only remaining what-if query per workload is
    # the final whole-plan estimate, and no candidate re-runs RRS.
    assert warm_totals["queries"] == len(WORKLOADS)
    assert warm_totals["rrs_evaluations"] == 0
    assert cold_totals["queries"] >= 5 * warm_totals["queries"], (
        f"warm pass saved too little: {cold_totals['queries']} cold vs "
        f"{warm_totals['queries']} warm what-if queries"
    )
    assert cold_totals["rrs_evaluations"] >= 5 * max(1, warm_totals["rrs_evaluations"])

    cpus = _usable_cpus()
    speedup = cold_s / max(warm_s, 1e-9)
    speedup_enforced = _speedup_enforced(cpus)

    payload = {
        "benchmark": "decision_cache",
        "scale": BENCHMARK_SCALE,
        "workloads": list(WORKLOADS),
        "usable_cpus": cpus,
        "identity_ok": True,
        "cache_off": _json_row(off, off_s),
        "cold": _json_row(cold, cold_s),
        "warm": _json_row(warm, warm_s),
        "query_reduction": round(
            cold_totals["queries"] / max(1, warm_totals["queries"]), 2
        ),
        "rrs_reduction": round(
            cold_totals["rrs_evaluations"] / max(1, warm_totals["rrs_evaluations"]), 2
        ),
        "warm_speedup": round(speedup, 3),
        "speedup_enforced": speedup_enforced,
        "min_speedup": _min_speedup(),
    }
    with open(_output_path(), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    print(f"\nDecision memoization, {len(WORKLOADS)} workloads ({cpus} usable CPU(s))")
    print("pass       wall_s  queries  rrs_evals  hits  misses")
    for label, row in (
        ("cache off", _json_row(off, off_s)),
        ("cold", _json_row(cold, cold_s)),
        ("warm", _json_row(warm, warm_s)),
    ):
        print(
            f"{label:<10} {row['wall_s']:>6.2f} {row['queries']:>8d} "
            f"{row['rrs_evaluations']:>10d} {row['decision_hits']:>5d} "
            f"{row['decision_misses']:>7d}"
        )
    print(
        f"query reduction {payload['query_reduction']}x, "
        f"rrs reduction {payload['rrs_reduction']}x, "
        f"warm speedup {speedup:.2f}x"
    )

    if speedup_enforced:
        assert speedup >= _min_speedup(), (
            f"warm pass reached only {speedup:.2f}x over cold on {cpus} CPUs "
            f"(required {_min_speedup():.1f}x); see {_output_path()}"
        )
    assert os.path.exists(_output_path())
