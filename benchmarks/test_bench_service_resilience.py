"""Resilience soak of the planning service (BENCH_service_resilience.json).

Mixed-tenant traffic against the :class:`PlanningServer` under a sweep of
seeded :class:`FaultPlan` scenarios — rung failures, hangs against
deadlines, queue shedding, a poisoned tenant tripping its breaker, a
SIGKILLed pool worker, and corrupted persisted caches.  The payload
records, per scenario, what was injected and what the service did about
it, so CI can archive the resilience trajectory across PRs.

Contracts (asserted on every scenario, not sampled):

* **zero hung requests** — every scenario's traffic completes under a hard
  ``asyncio.wait_for`` lid; an answer may be degraded or shed, never
  missing;
* **exact reconciliation** — shed/degraded/breaker counters equal the
  injected-fault arithmetic (``FaultPlan.fires()`` + breaker accounting),
  and per-tenant attributed cache stats sum exactly to the global deltas;
* **identity where undegraded** — every level-0 response remains
  bit-identical to the cold in-process oracle, faults notwithstanding.
"""

import asyncio
import json
import os

from conftest import BENCHMARK_SCALE, run_once

from repro.profiler import Profiler
from repro.service import PlanRequest, PlanningServer, cold_optimize, oracle_fingerprint
from repro.verification import (
    FaultPlan,
    FaultSpec,
    corrupt_file,
    install_fault_plan,
    truncate_file,
)
from repro.workloads import build_workload

#: Seeded variations of the rung-fault scenario (the chaos sweep's knob).
RESILIENCE_SEEDS = int(os.environ.get("BENCH_RESILIENCE_SEEDS", "3"))

#: Hard lid on any single scenario's traffic: the zero-hung-requests gate.
SCENARIO_TIMEOUT_S = 180.0

TENANTS = ("t0", "t1", "t2", "t3")


def _output_path():
    return os.environ.get("BENCH_RESILIENCE_OUT", "BENCH_service_resilience.json")


def _build_catalog(cluster):
    workload = build_workload("PJ", scale=BENCHMARK_SCALE, seed=42)
    Profiler().profile_workflow(workload.workflow, workload.base_datasets)
    return {"pj": workload.plan}


def _request(i, tenant=None, **kwargs):
    return PlanRequest(tenant=tenant or TENANTS[i % len(TENANTS)], workload="pj", **kwargs)


def _make_server(cluster, catalog, **kwargs):
    server = PlanningServer(cluster, pool=kwargs.pop("pool", "serial"), **kwargs)
    for name, plan in catalog.items():
        server.register_workload(name, plan)
    return server


def _run(coro):
    """Run one scenario under the zero-hung-requests lid."""
    return asyncio.run(asyncio.wait_for(coro, timeout=SCENARIO_TIMEOUT_S))


def _assert_attribution_exact(server, cost_before, decision_before):
    cost_delta = server.costs.stats_snapshot().since(cost_before)
    decision_delta = server.decisions.stats_snapshot().since(decision_before)
    assert server.stats.total_cost_stats().as_dict() == cost_delta.as_dict()
    assert server.stats.total_decision_stats().as_dict() == decision_delta.as_dict()


def _tenant_totals(server):
    rows = server.stats.tenants
    return {
        "completed": sum(r.completed for r in rows.values()),
        "failed": sum(r.failed for r in rows.values()),
        "degraded": sum(r.degraded for r in rows.values()),
        "shed": sum(r.shed for r in rows.values()),
        "breaker_trips": sum(r.breaker_trips for r in rows.values()),
        "breaker_short_circuits": sum(r.breaker_short_circuits for r in rows.values()),
    }


# ------------------------------------------------------------------ scenarios
def _scenario_baseline(cluster, catalog, oracle):
    """No faults: everything level 0 and bit-identical."""

    async def main():
        server = _make_server(cluster, catalog)
        cost_before = server.costs.stats_snapshot()
        decision_before = server.decisions.stats_snapshot()
        async with server:
            responses = await asyncio.gather(
                *[server.submit(_request(i)) for i in range(8)]
            )
        for response in responses:
            assert response.ok, response.error
            assert response.degradation_level == 0
            assert response.identity() == oracle
        _assert_attribution_exact(server, cost_before, decision_before)
        totals = _tenant_totals(server)
        assert totals == {
            "completed": 8,
            "failed": 0,
            "degraded": 0,
            "shed": 0,
            "breaker_trips": 0,
            "breaker_short_circuits": 0,
        }
        return {"requests": 8, "injected": 0, "degraded": 0, "shed": 0}

    return _run(main())


def _scenario_rung_faults(cluster, catalog, oracle, seed):
    """One seeded full-rung fault against t0: exactly one degraded answer."""
    victim_ordinal = seed % 3 + 1  # which of t0's full attempts blows up
    plan = FaultPlan(
        [
            FaultSpec(
                site="server.rung.full",
                kind="exception",
                match={"tenant": "t0"},
                at_hits=(victim_ordinal,),
            )
        ],
        seed=seed,
        name=f"rung-fault-seed-{seed}",
    )

    async def main():
        # Threshold high enough that this scenario never trips the breaker:
        # the fault count must explain the degraded count by itself.
        server = _make_server(cluster, catalog, breaker_threshold=99)
        cost_before = server.costs.stats_snapshot()
        decision_before = server.decisions.stats_snapshot()
        async with server:
            responses = [await server.submit(_request(0, tenant="t0")) for _ in range(4)]
            control = await asyncio.gather(
                *[server.submit(_request(i)) for i in range(1, 4)]
            )
        assert plan.fires("server.rung.full") == 1
        degraded = [r for r in responses if r.degradation_level > 0]
        assert len(degraded) == 1  # exact: one fire, one degraded answer
        assert degraded[0].degradation_level >= 1
        assert "full: InjectedFault" in degraded[0].degradation_reason
        for response in responses + list(control):
            assert response.ok, response.error
            if response.degradation_level == 0:
                assert response.identity() == oracle
        _assert_attribution_exact(server, cost_before, decision_before)
        totals = _tenant_totals(server)
        assert totals["degraded"] == 1 and totals["failed"] == 0
        return {
            "seed": seed,
            "requests": 7,
            "injected": plan.fires(),
            "degraded": totals["degraded"],
            "degraded_rung": degraded[0].degradation,
        }

    with install_fault_plan(plan):
        return _run(main())


def _scenario_hang_vs_deadline(cluster, catalog, oracle):
    """A hung dependency is cut short by the victim's deadline: level 3."""
    victims = 2
    plan = FaultPlan(
        [
            FaultSpec(
                site="server.execute",
                kind="hang",
                match={"tenant": "victim"},
                delay_s=0.5,
            )
        ],
        name="hang-vs-deadline",
    )

    async def main():
        server = _make_server(cluster, catalog)
        cost_before = server.costs.stats_snapshot()
        decision_before = server.decisions.stats_snapshot()
        async with server:
            # Sequential victims: dispatched immediately (so never shed),
            # then hung past their whole budget — the ladder floors them.
            hung = [
                await server.submit(_request(0, tenant="victim", deadline_s=0.3))
                for _ in range(victims)
            ]
            bystanders = await asyncio.gather(
                *[server.submit(_request(i)) for i in range(4)]
            )
        assert plan.fires("server.execute") == victims
        for response in hung:
            assert response.ok, response.error
            assert response.degradation_level == 3 and not response.shed
            assert "deadline exhausted" in response.degradation_reason
        for response in bystanders:
            assert response.ok and response.degradation_level == 0
            assert response.identity() == oracle
        _assert_attribution_exact(server, cost_before, decision_before)
        totals = _tenant_totals(server)
        assert totals["degraded"] == victims and totals["shed"] == 0
        return {
            "requests": victims + 4,
            "injected": plan.fires(),
            "degraded": totals["degraded"],
            "shed": 0,
        }

    with install_fault_plan(plan):
        return _run(main())


def _scenario_shedding(cluster, catalog, oracle):
    """Requests expiring in the queue are answered (level 3), not dropped."""
    victims = 3

    async def main():
        server = _make_server(cluster, catalog)
        await server.start(serve=False)  # hold dispatch until deadlines pass
        try:
            cost_before = server.costs.stats_snapshot()
            decision_before = server.decisions.stats_snapshot()
            doomed = [
                asyncio.ensure_future(
                    server.submit(_request(0, tenant="late", deadline_s=0.05))
                )
                for _ in range(victims)
            ]
            patient = [
                asyncio.ensure_future(server.submit(_request(i))) for i in range(4)
            ]
            await asyncio.sleep(0.2)
            server.resume()
            shed_responses = await asyncio.gather(*doomed)
            served = await asyncio.gather(*patient)
        finally:
            await server.stop()
        for response in shed_responses:
            assert response.ok and response.shed
            assert response.degradation_level == 3
            assert response.plan_signature  # an answer, not a stub
        for response in served:
            assert response.ok and not response.shed
            assert response.degradation_level == 0
            assert response.identity() == oracle
        assert server.admission.stats.shed_expired == victims
        _assert_attribution_exact(server, cost_before, decision_before)
        totals = _tenant_totals(server)
        assert totals["shed"] == victims and totals["degraded"] == 0
        return {
            "requests": victims + 4,
            "injected": victims,
            "shed": totals["shed"],
            "degraded": 0,
        }

    return _run(main())


def _scenario_breaker(cluster, catalog, oracle):
    """A poisoned tenant trips its breaker; fires + short-circuits = degraded."""
    threshold, extra = 3, 3
    plan = FaultPlan(
        [FaultSpec(site="server.rung.full", kind="exception", match={"tenant": "hot"})],
        name="poisoned-tenant",
    )

    async def main():
        server = _make_server(
            cluster, catalog, breaker_threshold=threshold, breaker_backoff_s=60.0
        )
        cost_before = server.costs.stats_snapshot()
        decision_before = server.decisions.stats_snapshot()
        async with server:
            hot = [
                await server.submit(_request(0, tenant="hot"))
                for _ in range(threshold + extra)
            ]
            control = await server.submit(_request(1))
        fires = plan.fires("server.rung.full")
        assert fires == threshold  # short-circuited requests never reach the rung
        for response in hot:
            assert response.ok and response.degradation_level >= 1
        breaker = server.breaker("hot")
        assert breaker.state == "open" and breaker.trips == 1
        row = server.stats.tenant("hot")
        assert row.breaker_trips == 1
        assert row.breaker_short_circuits == extra
        # Exact arithmetic: every degraded answer is a fire or a short-circuit.
        assert row.degraded == fires + row.breaker_short_circuits
        assert control.degradation_level == 0
        assert control.identity() == oracle
        _assert_attribution_exact(server, cost_before, decision_before)
        return {
            "requests": threshold + extra + 1,
            "injected": fires,
            "degraded": row.degraded,
            "breaker_trips": row.breaker_trips,
            "breaker_short_circuits": row.breaker_short_circuits,
        }

    with install_fault_plan(plan):
        return _run(main())


def _scenario_worker_kill(cluster, catalog, oracle):
    """A SIGKILLed pool worker: retried on the survivor, answers identical."""
    plan = FaultPlan(
        [
            FaultSpec(
                site="parallel.task",
                kind="kill",
                match={"worker_slot": 0},
                at_hits=(2,),
            )
        ],
        name="kill-worker-0",
    )

    async def main():
        server = _make_server(cluster, catalog, pool="process:2")
        cost_before = server.costs.stats_snapshot()
        decision_before = server.decisions.stats_snapshot()
        await server.start(serve=False)  # one guaranteed 4-request batch
        try:
            futures = [
                asyncio.ensure_future(server.submit(_request(i))) for i in range(4)
            ]
            await asyncio.sleep(0.1)
            server.resume()
            responses = await asyncio.gather(*futures)
            stats = server.dispatch_stats()
        finally:
            await server.stop()
        for response in responses:
            assert response.ok, response.error
            assert response.degradation_level == 0
            assert response.identity() == oracle
        assert stats.worker_deaths >= 1
        assert stats.retried_tasks >= 1
        assert stats.tasks == 4  # exactly one counted execution per request
        _assert_attribution_exact(server, cost_before, decision_before)
        totals = _tenant_totals(server)
        assert totals["failed"] == 0 and totals["degraded"] == 0
        return {
            "requests": 4,
            "worker_deaths": stats.worker_deaths,
            "retried_tasks": stats.retried_tasks,
            "degraded": 0,
        }

    with install_fault_plan(plan):
        return _run(main())


def _scenario_corrupted_caches(cluster, catalog, oracle, tmp_dir):
    """Mangled persisted stores are rejected quietly; answers stay identical."""
    cost_path = os.path.join(tmp_dir, "resilience-costs.cache")
    decision_path = os.path.join(tmp_dir, "resilience-decisions.cache")

    async def wave(server):
        async with server:
            return await asyncio.gather(*[server.submit(_request(i)) for i in range(4)])

    async def main():
        # Populate and persist, then mangle both files on disk.
        first = _make_server(
            cluster, catalog, cache_path=cost_path, decision_cache_path=decision_path
        )
        for response in await wave(first):
            assert response.ok and response.identity() == oracle
        assert corrupt_file(cost_path, seed=5)
        assert truncate_file(decision_path, fraction=0.5)

        # The warm restart loads nothing — and says so — but serves cold,
        # undegraded, bit-identical answers.
        second = _make_server(
            cluster, catalog, cache_path=cost_path, decision_cache_path=decision_path
        )
        assert second.costs.last_load is not None and not second.costs.last_load.loaded
        assert (
            second.decisions.last_load is not None
            and not second.decisions.last_load.loaded
        )
        cost_before = second.costs.stats_snapshot()
        decision_before = second.decisions.stats_snapshot()
        responses = await wave(second)
        for response in responses:
            assert response.ok, response.error
            assert response.degradation_level == 0
            assert response.identity() == oracle
        _assert_attribution_exact(second, cost_before, decision_before)
        totals = _tenant_totals(second)
        assert totals["degraded"] == 0 and totals["failed"] == 0
        return {
            "requests": 4,
            "cost_load_rejected": second.costs.last_load.reason,
            "decision_load_rejected": second.decisions.last_load.reason,
            "degraded": 0,
        }

    return _run(main())


# ------------------------------------------------------------------ the bench
def test_bench_service_resilience(benchmark, cluster, tmp_path):
    catalog = _build_catalog(cluster)
    oracle = oracle_fingerprint(cold_optimize(cluster, catalog["pj"], "Stubby"))

    def run_all():
        rows = {}
        rows["baseline"] = _scenario_baseline(cluster, catalog, oracle)
        rows["rung_faults"] = [
            _scenario_rung_faults(cluster, catalog, oracle, seed)
            for seed in range(RESILIENCE_SEEDS)
        ]
        rows["hang_vs_deadline"] = _scenario_hang_vs_deadline(cluster, catalog, oracle)
        rows["shedding"] = _scenario_shedding(cluster, catalog, oracle)
        rows["breaker"] = _scenario_breaker(cluster, catalog, oracle)
        rows["worker_kill"] = _scenario_worker_kill(cluster, catalog, oracle)
        rows["corrupted_caches"] = _scenario_corrupted_caches(
            cluster, catalog, oracle, str(tmp_path)
        )
        return rows

    rows = run_once(benchmark, run_all)

    payload = {
        "benchmark": "service_resilience",
        "scale": BENCHMARK_SCALE,
        "resilience_seeds": RESILIENCE_SEEDS,
        "scenario_timeout_s": SCENARIO_TIMEOUT_S,
        "zero_hung_requests": True,  # every scenario completed under the lid
        "scenarios": rows,
    }
    with open(_output_path(), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    print("\nService resilience soak (every scenario reconciled exactly)")
    print("scenario             requests  injected  degraded  shed  notes")
    flat = [("baseline", rows["baseline"])]
    flat += [(f"rung_faults[{r['seed']}]", r) for r in rows["rung_faults"]]
    flat += [
        ("hang_vs_deadline", rows["hang_vs_deadline"]),
        ("shedding", rows["shedding"]),
        ("breaker", rows["breaker"]),
        ("worker_kill", rows["worker_kill"]),
        ("corrupted_caches", rows["corrupted_caches"]),
    ]
    for name, row in flat:
        notes = ""
        if "breaker_trips" in row:
            notes = f"trips={row['breaker_trips']} short_circuits={row['breaker_short_circuits']}"
        if "worker_deaths" in row:
            notes = f"deaths={row['worker_deaths']} retried={row['retried_tasks']}"
        print(
            f"{name:<20} {row.get('requests', 0):>8} {row.get('injected', 0):>9} "
            f"{row.get('degraded', 0):>9} {row.get('shed', 0):>5}  {notes}"
        )
    assert os.path.exists(_output_path())
