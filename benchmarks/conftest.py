"""Shared fixtures for the benchmark harness (one per paper table/figure)."""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.cluster import ClusterSpec  # noqa: E402
from repro.experiments import ExperimentHarness  # noqa: E402

#: Data-generation scale used by the benchmarks.  Increase for slower but
#: statistically smoother runs; the reported *shape* is stable at this scale.
BENCHMARK_SCALE = 0.15


@pytest.fixture(scope="session")
def cluster():
    return ClusterSpec.paper_cluster()


@pytest.fixture(scope="session")
def harness(cluster):
    return ExperimentHarness(cluster=cluster, scale=BENCHMARK_SCALE)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
