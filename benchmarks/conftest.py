"""Shared fixtures for the benchmark harness (one per paper table/figure)."""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.cluster import ClusterSpec  # noqa: E402
from repro.experiments import ExperimentHarness  # noqa: E402

#: Data-generation scale used by the benchmarks.  Increase for slower but
#: statistically smoother runs; the reported *shape* is stable at this scale.
BENCHMARK_SCALE = 0.15


@pytest.fixture(scope="session")
def cluster():
    return ClusterSpec.paper_cluster()


@pytest.fixture(scope="session")
def harness(cluster):
    """The shared harness behind the fig10–fig14 benchmarks.

    Honours the ``STUBBY_COST_CACHE`` environment variable (resolved inside
    :class:`ExperimentHarness`): when set, the session warm-starts its cost
    service from the persisted cache and merges the store back at teardown.
    The warm start pays off in the benchmarks that estimate on a shared
    service without resetting it (fig10's unit enumeration, fig14's deep
    dive); the ``compare()``-based figures (11–13) deliberately invalidate
    the cache before each timed optimizer so their reported numbers stay
    standalone — persistence cannot and does not speed those up.  Results
    are unaffected either way: cached estimates are bit-identical by the
    service's exactness contract.
    """
    instance = ExperimentHarness(cluster=cluster, scale=BENCHMARK_SCALE)
    yield instance
    if instance.cache_path:
        # merge_first re-absorbs whatever the file holds before saving, so a
        # session that ends with a sparse (post-invalidate) in-memory store
        # never shrinks a richer persisted one — merging is idempotent and
        # exact.
        instance.costs.save_cache(merge_first=True)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
