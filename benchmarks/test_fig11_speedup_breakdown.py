"""Figure 11: speedup over the Baseline of Stubby, Vertical, and Horizontal.

Regenerates the paper's Figure 11 series for all eight workloads.  Expected
shape (not absolute values): Stubby is at least as fast as the Baseline on
every workload and at least as fast as the better of its Vertical-only and
Horizontal-only variants (within a small tolerance for RRS randomness);
IR/SN benefit mostly from the Vertical group; PJ's cost-based decision not to
pack horizontally beats the Baseline's rule.
"""

from conftest import run_once

from repro.workloads import WORKLOAD_ORDER

OPTIMIZERS = ("Baseline", "Stubby", "Vertical", "Horizontal")


def test_fig11_speedup_over_baseline(benchmark, harness):
    def run_all():
        return [harness.compare(abbr, optimizers=OPTIMIZERS) for abbr in WORKLOAD_ORDER]

    comparisons = run_once(benchmark, run_all)

    print("\nFigure 11: speedup over Baseline (actual simulated runtimes)")
    print(harness.format_speedup_table(comparisons, OPTIMIZERS))

    for comparison in comparisons:
        for run in comparison.runs.values():
            assert run.output_equivalent, f"{comparison.abbreviation}:{run.optimizer} changed results"
        stubby = comparison.speedup("Stubby")
        vertical = comparison.speedup("Vertical")
        horizontal = comparison.speedup("Horizontal")
        assert stubby >= 0.95, f"{comparison.abbreviation}: Stubby slower than Baseline"
        assert stubby >= max(vertical, horizontal) * 0.85, (
            f"{comparison.abbreviation}: Stubby should track its best variant"
        )

    by_abbr = {c.abbreviation: c for c in comparisons}
    # PJ: the Baseline's unconditional horizontal packing is the wrong choice.
    assert by_abbr["PJ"].speedup("Stubby") > 1.2
    assert by_abbr["PJ"].runs["Stubby"].num_jobs == 3
    # IR and SN gains come predominantly from the Vertical group.
    assert by_abbr["IR"].speedup("Vertical") >= by_abbr["IR"].speedup("Horizontal") * 0.9
    assert by_abbr["SN"].speedup("Vertical") >= by_abbr["SN"].speedup("Horizontal") * 0.9
