"""Wide-workflow microbenchmark: the topology-scan tax on 10→1000-job DAGs.

Sweeps telemetry-style wide workflows (fan-out channels into staged fan-in
rollups, ``RandomWorkflowGenerator.telemetry_rollup``) across job counts
from ~10 to ~1000 and, per size, runs the same workflow-costing queries in
two modes — legacy brute-force graph scans vs the incremental topology
index (:func:`repro.workflow.graph.set_topology_index_enabled`) — recording:

* **full graph scans per costing query**: the legacy mode pays one full
  pass over the job table per ``producer_of``-style lookup, O(jobs²–³) per
  query on wide DAGs; the indexed mode pays only index (re)builds, which
  amortize to ~0 across queries.  The asserted contract: **≥10× fewer
  scan-equivalents per costing query at ≥100 jobs**, on every host.
* **index maintenance counters**: the search-loop storms (config-only
  candidates, structural rewrites) must maintain the index incrementally —
  zero from-scratch rebuilds, one CoW index copy per structural candidate,
  cached topological order surviving config-only mutations.
* **bit-identity**: cost estimates and topology answers must be identical
  in both modes, and optimizer decisions on a wide workflow must not change.
* **wall clock**: per-query costing time in both modes; the speedup is
  asserted only on >4-CPU hosts (small CI containers record honestly).

Results land in ``BENCH_wide_workflows.json`` (override the path through
the ``BENCH_WIDE_WORKFLOWS_OUT`` environment variable), archived by CI next
to the other benchmark JSONs.
"""

import json
import os
import time

from conftest import run_once

from repro.cluster import ClusterSpec
from repro.core.optimizer import StubbyOptimizer
from repro.verification import RandomWorkflowGenerator
from repro.whatif.model import WhatIfEngine
from repro.workflow.graph import TOPOLOGY_COUNTERS, set_topology_index_enabled

#: (channels, fanin) pairs: total jobs = channels + ceil(channels/fanin) + 1
#: grand rollup (skipped when a single rollup suffices) — ~10 to ~1000 jobs.
SWEEP = ((8, 8), (26, 8), (88, 8), (264, 8), (884, 8))

#: Costing queries per mode per size (identical work in both modes).
QUERIES = 3

#: Counter contract (ISSUE 6): asserted on every host at >=100 jobs.
MIN_SCAN_REDUCTION = 10.0
#: Wall-clock contract: asserted only where enough CPUs make timing stable.
MIN_WALL_SPEEDUP = 3.0
WALL_SPEEDUP_MIN_JOBS = 100


def _output_path():
    return os.environ.get("BENCH_WIDE_WORKFLOWS_OUT", "BENCH_wide_workflows.json")


def _usable_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


_GENERATOR = RandomWorkflowGenerator().with_config(records_per_dataset=60)


def _costing_queries(engine, workflow):
    """Run the costing queries under zeroed counters; return the evidence."""
    TOPOLOGY_COUNTERS.reset()
    started = time.perf_counter()
    totals = [engine.estimate_workflow(workflow).total_s for _ in range(QUERIES)]
    wall_s = time.perf_counter() - started
    return totals, wall_s, TOPOLOGY_COUNTERS.snapshot()


def _topology_answers(workflow):
    """The topology answers a costing traversal depends on, as plain data."""
    return {
        "order": [v.name for v in workflow.topological_order()],
        "levels": [[v.name for v in level] for level in workflow.topological_levels()],
        "base": [d.name for d in workflow.base_datasets()],
        "terminal": [d.name for d in workflow.terminal_datasets()],
    }


def _sweep_point(channels, fanin, engine):
    generated = _GENERATOR.telemetry_rollup(4242 + channels, num_channels=channels, fanin=fanin)
    workflow = generated.workflow
    levels = workflow.topological_levels()  # warm the index + caches

    indexed_totals, indexed_wall, indexed_counters = _costing_queries(engine, workflow)
    indexed_answers = _topology_answers(workflow)

    previous = set_topology_index_enabled(False)
    try:
        legacy_totals, legacy_wall, legacy_counters = _costing_queries(engine, workflow)
        legacy_answers = _topology_answers(workflow)
    finally:
        set_topology_index_enabled(previous)

    assert indexed_totals == legacy_totals, (
        f"{workflow.num_jobs} jobs: indexed costing diverged from legacy scans"
    )
    assert indexed_answers == legacy_answers, (
        f"{workflow.num_jobs} jobs: indexed topology answers diverged from legacy scans"
    )

    # Scan-equivalents actually paid per costing query in each mode: a full
    # scan and a from-scratch (re)build each walk the whole graph once.
    legacy_scans = legacy_counters["full_scans"]
    indexed_equivalents = (
        indexed_counters["full_scans"]
        + indexed_counters["index_builds"]
        + indexed_counters["toposort_builds"]
    )
    return {
        "num_jobs": workflow.num_jobs,
        "num_datasets": len(workflow.datasets),
        "num_levels": len(levels),
        "widest_level": max(len(level) for level in levels),
        "queries": QUERIES,
        "indexed": {
            "wall_s": round(indexed_wall, 4),
            "scan_equivalents": indexed_equivalents,
            **indexed_counters,
        },
        "legacy": {"wall_s": round(legacy_wall, 4), "full_scans": legacy_scans},
        "scans_per_query_legacy": legacy_scans / QUERIES,
        "scans_per_query_indexed": indexed_equivalents / QUERIES,
        "scan_reduction": legacy_scans / max(1, indexed_equivalents),
        "wall_speedup": legacy_wall / indexed_wall if indexed_wall else 0.0,
    }


def _candidate_storms(channels=88, fanin=8, candidates=50):
    """The search hot loop's index contract, measured on a wide workflow.

    Config-only candidates (RRS samples) must share the parent's index and
    its cached topology outright; structural candidates (packing rewrites)
    must privatize the index once and patch it incrementally — never
    rebuild from scratch.
    """
    generated = _GENERATOR.with_config(profile=False, records_per_dataset=60).telemetry_rollup(
        99, num_channels=channels, fanin=fanin
    )
    workflow = generated.workflow
    workflow.topological_levels()  # warm

    TOPOLOGY_COUNTERS.reset()
    names = workflow.job_names
    for sample in range(candidates):
        candidate = workflow.copy()
        candidate.update_job(
            names[sample % len(names)],
            lambda job: job.with_config(job.config.replace(num_reduce_tasks=1 + sample % 7)),
        )
        candidate.topological_levels()
    config_counters = TOPOLOGY_COUNTERS.snapshot()

    TOPOLOGY_COUNTERS.reset()
    for sample in range(candidates):
        candidate = workflow.copy()
        victim = candidate.job(names[sample % len(names)])
        replacement = victim.job.copy()
        candidate.replace_job(victim.name, replacement)
        candidate.topological_levels()
    structural_counters = TOPOLOGY_COUNTERS.snapshot()

    assert config_counters["index_builds"] == 0
    assert config_counters["index_copies"] == 0
    assert config_counters["toposort_builds"] == 0
    assert config_counters["toposort_cache_hits"] == candidates
    assert structural_counters["index_builds"] == 0
    assert structural_counters["index_copies"] == candidates
    assert structural_counters["incremental_updates"] == candidates
    return {
        "candidates": candidates,
        "num_jobs": workflow.num_jobs,
        "config_only": config_counters,
        "structural": structural_counters,
    }


def _optimizer_identity(channels=20, fanin=6):
    """Optimizer decisions on a wide workflow: identical in both modes."""
    cluster = ClusterSpec.paper_cluster()

    def run(indexed):
        generated = _GENERATOR.telemetry_rollup(7, num_channels=channels, fanin=fanin)
        optimizer = StubbyOptimizer(cluster, seed=17)
        previous = set_topology_index_enabled(indexed)
        try:
            result = optimizer.optimize(generated.plan)
        finally:
            set_topology_index_enabled(previous)
        return (
            result.estimated_cost_s,
            tuple(result.transformations_applied),
            tuple(sorted(result.plan.workflow.job_names)),
            result.plan.signature(),
        )

    indexed = run(True)
    legacy = run(False)
    assert indexed == legacy, "topology index changed optimizer decisions"
    return {
        "num_channels": channels,
        "estimated_cost_s": indexed[0],
        "transformations_applied": list(indexed[1]),
    }


def test_bench_wide_workflows(benchmark):
    engine = WhatIfEngine(ClusterSpec.paper_cluster())

    def run_all():
        return [_sweep_point(channels, fanin, engine) for channels, fanin in SWEEP]

    rows = run_once(benchmark, run_all)
    cpus = _usable_cpus()
    speedup_enforced = cpus > 4
    storms = _candidate_storms()
    identity = _optimizer_identity()

    payload = {
        "benchmark": "wide_workflow_topology_index",
        "usable_cpus": cpus,
        "queries_per_mode": QUERIES,
        "min_scan_reduction": MIN_SCAN_REDUCTION,
        "min_wall_speedup": MIN_WALL_SPEEDUP,
        "speedup_enforced": speedup_enforced,
        "candidate_storms": storms,
        "optimizer_identity": identity,
        "sweep": rows,
    }
    with open(_output_path(), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    print(f"\nWide-workflow topology index vs legacy scans ({cpus} usable CPU(s))")
    print("jobs   levels  scans/query(legacy->indexed)  scan_x   wall(legacy->indexed)  wall_x")
    for row in rows:
        print(
            f"{row['num_jobs']:<6} {row['num_levels']:<7} "
            f"{row['scans_per_query_legacy']:>10.1f}->{row['scans_per_query_indexed']:<8.2f} "
            f"{row['scan_reduction']:>7.0f}x "
            f"{row['legacy']['wall_s']:>8.3f}s->{row['indexed']['wall_s']:<7.3f}s "
            f"{row['wall_speedup']:>6.1f}x"
        )

    for row in rows:
        if row["num_jobs"] >= 100:
            assert row["scan_reduction"] >= MIN_SCAN_REDUCTION, (
                f"{row['num_jobs']} jobs: only {row['scan_reduction']:.1f}x fewer "
                f"graph scans per costing query"
            )
        if speedup_enforced and row["num_jobs"] >= WALL_SPEEDUP_MIN_JOBS:
            assert row["wall_speedup"] >= MIN_WALL_SPEEDUP, (
                f"{row['num_jobs']} jobs: costing speedup {row['wall_speedup']:.2f}x < "
                f"{MIN_WALL_SPEEDUP}x with {cpus} CPUs; see {_output_path()}"
            )
    assert os.path.exists(_output_path())
