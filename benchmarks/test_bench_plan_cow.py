"""Copy-on-write plan microbenchmark: the deep-copy and re-hash tax of search.

Runs the full Stubby optimizer over canned workloads twice — once in the
legacy mode (wholesale deep copies, no signature memo) and once in the
copy-on-write mode (structural sharing + incremental signatures) — and
records, per workload:

* **vertex copies per candidate**: job-vertex copies actually performed vs.
  the copies the legacy wholesale ``Workflow.copy`` performs on the same run
  (the CoW speedup multiplier of candidate generation);
* **signature derivations per costing query**: full per-vertex signature
  walks vs. total signature requests (the incremental-signature multiplier);
* **decision identity**: both modes must produce bit-identical decisions
  (same transformations, same estimated cost) — CoW must never leak a
  mutation into a shared ancestor;
* **allocation probe**: traced allocations of one costing window, plus proof
  that the hot value objects really are ``__slots__`` layouts;
* **wall clock**: whole-optimizer time in both modes (informational), plus a
  dedicated **candidate-evaluation microloop** — the RRS inner body
  (plan copy → apply settings → cost) over a wide workflow — whose speedup
  is the asserted wall-clock contract.  The counter assertions hold on every
  host; the wall-clock speedup is asserted only on >4-CPU hosts (small CI
  containers report honestly instead).

Results land in ``BENCH_plan_cow.json`` (override the path through the
``BENCH_PLAN_COW_OUT`` environment variable), archived by CI next to the
other benchmark JSONs.
"""

import json
import os
import time
import tracemalloc

from conftest import BENCHMARK_SCALE, run_once

from repro.core.optimizer import StubbyOptimizer
from repro.profiler import Profiler
from repro.whatif.dataflow import JobDataflow
from repro.whatif.jobmodel import JobTimeEstimate
from repro.workflow.graph import COPY_COUNTERS, set_cow_enabled
from repro.workloads import build_workload

#: Workloads exercised by the microbench: the paper trio covering vertical
#: packing (IR), filter/partition pruning (LA), and a wider DAG (BR).
BENCH_WORKLOADS = ("IR", "LA", "BR")

#: Counter contracts (see ISSUE 5): asserted on every host.
MIN_COPY_REDUCTION = 5.0
MIN_SIGNATURE_REDUCTION = 3.0
#: Wall-clock contract: asserted only where enough CPUs make timing stable.
MIN_SPEEDUP = 1.5


def _output_path():
    return os.environ.get("BENCH_PLAN_COW_OUT", "BENCH_plan_cow.json")


def _usable_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _fingerprint(result):
    """An optimizer run's decisions as comparable plain data."""
    return (
        result.estimated_cost_s,
        tuple(result.transformations_applied),
        tuple(sorted(result.plan.workflow.job_names)),
        result.plan.signature(),
    )


def _run_optimizer(abbr, cow: bool):
    """One optimize() in the requested mode; returns (row, fingerprint)."""
    workload = build_workload(abbr, scale=BENCHMARK_SCALE)
    Profiler().profile_workflow(workload.workflow, workload.base_datasets)
    optimizer = StubbyOptimizer(workload_cluster(), seed=17)
    optimizer.search.costs.engine.signature_memo_enabled = cow

    previous = set_cow_enabled(cow)
    COPY_COUNTERS.reset()
    try:
        started = time.perf_counter()
        result = optimizer.optimize(workload.plan)
        wall_s = time.perf_counter() - started
    finally:
        set_cow_enabled(previous)

    copies = COPY_COUNTERS.snapshot()
    engine = optimizer.search.costs.engine
    signature_requests = engine.signature_derivations + engine.signature_memo_hits
    row = {
        "wall_s": round(wall_s, 4),
        "workflow_copies": copies["workflow_copies"],
        "vertex_copies": copies["vertex_copies"],
        "legacy_vertex_copies": copies["legacy_vertex_copies"],
        "signature_derivations": engine.signature_derivations,
        "signature_requests": signature_requests,
        "whatif_queries": result.cost_stats.queries if result.cost_stats else 0,
        "num_jobs": result.num_jobs,
    }
    return row, _fingerprint(result)


_CLUSTER = None


def workload_cluster():
    from repro.cluster import ClusterSpec

    global _CLUSTER
    if _CLUSTER is None:
        _CLUSTER = ClusterSpec.paper_cluster()
    return _CLUSTER


def _candidate_eval_microloop(iterations=600):
    """The RRS inner body, timed in both modes over a wide random workflow.

    One candidate evaluation = CoW plan clone + settings applied to one job
    + incremental workflow costing against a warm cache — exactly what the
    search executes per RRS sample.  A wide (≥12-job) workflow makes the
    copy tax the dominant term, which is the regime the CoW refactor
    targets; the per-workload optimizer walls above cover the small-workflow
    regime.
    """
    from repro.core.costing import CostService
    from repro.core.transformations.configuration import ConfigurationTransformation
    from repro.verification import RandomWorkflowGenerator

    generated = RandomWorkflowGenerator().with_config(min_jobs=16, max_jobs=18).generate(4242)
    plan = generated.plan
    job = plan.job_names[0]

    def loop(service, n):
        started = time.perf_counter()
        for i in range(n):
            candidate = plan.copy()
            ConfigurationTransformation.apply_settings_in_place(
                candidate, {job: {"io_sort_mb": 64 + (i % 8) * 32}}
            )
            service.estimate_workflow(candidate.workflow)
        return time.perf_counter() - started

    # Best-of-N alternating repeats: the min is the noise-robust estimator
    # for a microloop (anything above it is scheduler/GC interference).
    timings = {"legacy": float("inf"), "cow": float("inf")}
    services = {}
    for label, cow in (("legacy", False), ("cow", True)):
        previous = set_cow_enabled(cow)
        try:
            services[label] = CostService(workload_cluster())
            services[label].engine.signature_memo_enabled = cow
            loop(services[label], iterations // 8)  # warm the cache and memos
        finally:
            set_cow_enabled(previous)
    for _ in range(3):
        for label, cow in (("legacy", False), ("cow", True)):
            previous = set_cow_enabled(cow)
            try:
                timings[label] = min(timings[label], loop(services[label], iterations))
            finally:
                set_cow_enabled(previous)
    return {
        "num_jobs": plan.num_jobs,
        "iterations": iterations,
        "legacy_s": round(timings["legacy"], 4),
        "cow_s": round(timings["cow"], 4),
        "speedup": timings["legacy"] / timings["cow"] if timings["cow"] else 0.0,
    }


def _allocation_probe():
    """Traced allocation cost of one repeated costing window, plus slots proof."""
    from repro.core.costing import CostService

    workload = build_workload("IR", scale=BENCHMARK_SCALE)
    Profiler().profile_workflow(workload.workflow, workload.base_datasets)
    service = CostService(workload_cluster(), enable_cache=False)
    workflow = workload.plan.workflow

    service.estimate_workflow(workflow)  # warm imports and memos
    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    for _ in range(25):
        service.estimate_workflow(workflow)
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    allocated = sum(stat.size_diff for stat in after.compare_to(before, "filename"))

    sample_estimate = service.estimate_workflow(workflow).per_job
    sample = next(iter(sample_estimate.values()))
    return {
        "traced_net_bytes_25_queries": int(allocated),
        "jobdataflow_has_dict": hasattr(
            JobDataflow(
                input_bytes=1, input_records=1, map_output_records=1, map_output_bytes=1,
                shuffle_records=1, shuffle_bytes=1, reduce_input_records=1,
                output_records=1, output_bytes=1,
            ),
            "__dict__",
        ),
        "jobtimeestimate_has_dict": hasattr(sample, "__dict__"),
        "jobtimeestimate_slotted": isinstance(sample, JobTimeEstimate)
        and not hasattr(sample, "__dict__"),
    }


def test_bench_plan_cow(benchmark):
    def run_all():
        rows = {}
        for abbr in BENCH_WORKLOADS:
            legacy, legacy_decisions = _run_optimizer(abbr, cow=False)
            cow, cow_decisions = _run_optimizer(abbr, cow=True)
            assert cow_decisions == legacy_decisions, (
                f"{abbr}: CoW plans changed optimizer decisions"
            )
            rows[abbr] = {
                "legacy": legacy,
                "cow": cow,
                "copy_reduction": (
                    legacy["vertex_copies"] / cow["vertex_copies"]
                    if cow["vertex_copies"]
                    else float("inf")
                ),
                "signature_reduction": (
                    cow["signature_requests"] / cow["signature_derivations"]
                    if cow["signature_derivations"]
                    else float("inf")
                ),
                "wall_speedup": legacy["wall_s"] / cow["wall_s"] if cow["wall_s"] else 0.0,
            }
        return rows

    rows = run_once(benchmark, run_all)
    cpus = _usable_cpus()
    speedup_enforced = cpus > 4
    allocation = _allocation_probe()
    candidate_eval = _candidate_eval_microloop()

    payload = {
        "benchmark": "plan_cow_structural_sharing",
        "scale": BENCHMARK_SCALE,
        "usable_cpus": cpus,
        "min_copy_reduction": MIN_COPY_REDUCTION,
        "min_signature_reduction": MIN_SIGNATURE_REDUCTION,
        "min_speedup": MIN_SPEEDUP,
        "speedup_enforced": speedup_enforced,
        "allocation_probe": allocation,
        "candidate_eval": candidate_eval,
        "workloads": rows,
    }
    with open(_output_path(), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    print(f"\nCopy-on-write plans vs legacy deep copies ({cpus} usable CPU(s))")
    print("workload  copies(legacy->cow)  copy_x  sig(req->derived)  sig_x  wall_x")
    for abbr, row in rows.items():
        cow, legacy = row["cow"], row["legacy"]
        print(
            f"{abbr:<9} {legacy['vertex_copies']:>8}->{cow['vertex_copies']:<8} "
            f"{row['copy_reduction']:>5.1f}x "
            f"{cow['signature_requests']:>7}->{cow['signature_derivations']:<7} "
            f"{row['signature_reduction']:>5.1f}x {row['wall_speedup']:>5.2f}x"
        )
    print(
        f"candidate-eval microloop ({candidate_eval['num_jobs']} jobs, "
        f"{candidate_eval['iterations']} evals): "
        f"{candidate_eval['legacy_s']:.3f}s -> {candidate_eval['cow_s']:.3f}s "
        f"({candidate_eval['speedup']:.2f}x; "
        f"{'asserted' if speedup_enforced else 'recorded only'})"
    )

    # Slots landed: the hot value objects carry no per-instance __dict__.
    assert not allocation["jobdataflow_has_dict"]
    assert not allocation["jobtimeestimate_has_dict"]

    for abbr, row in rows.items():
        cow, legacy = row["cow"], row["legacy"]
        # Same amount of logical work in both modes...
        assert cow["whatif_queries"] == legacy["whatif_queries"], abbr
        assert cow["workflow_copies"] == legacy["workflow_copies"], abbr
        # ...but >=5x fewer vertex copies per candidate (same candidate
        # count, so the per-candidate ratio equals the total ratio)...
        assert cow["vertex_copies"] * MIN_COPY_REDUCTION <= legacy["vertex_copies"], (
            f"{abbr}: only {row['copy_reduction']:.1f}x fewer vertex copies"
        )
        # ...and >=3x fewer full signature derivations per costing query.
        assert (
            cow["signature_derivations"] * MIN_SIGNATURE_REDUCTION
            <= cow["signature_requests"]
        ), f"{abbr}: only {row['signature_reduction']:.1f}x fewer signature derivations"
    if speedup_enforced:
        assert candidate_eval["speedup"] >= MIN_SPEEDUP, (
            f"candidate-evaluation speedup {candidate_eval['speedup']:.2f}x < "
            f"{MIN_SPEEDUP}x with {cpus} CPUs; see {_output_path()}"
        )
    assert os.path.exists(_output_path())
