"""Figure 14: actual vs estimated cost for the subplans of one optimization unit.

Regenerates the paper's Figure 14 scatter: every subplan enumerated for the
first optimization unit of the Information Retrieval workflow is configured
with its best RRS settings, costed by the What-if engine (estimated), and
executed on the engine + cluster simulator (actual).  The estimates need not
be exact, but they must be good enough to identify the best and the worst
subplan — which is all the greedy search needs.
"""

from conftest import run_once


def _normalized(values):
    top = max(values)
    return [v / top for v in values] if top > 0 else values


def test_fig14_estimated_vs_actual_subplan_costs(benchmark, harness):
    rows = run_once(benchmark, lambda: harness.unit_deep_dive("IR"))
    assert len(rows) >= 2

    estimates = [estimated for _, estimated, _ in rows]
    actuals = [actual for _, _, actual in rows]
    norm_estimates = _normalized(estimates)
    norm_actuals = _normalized(actuals)

    print("\nFigure 14: IR first optimization unit — normalized estimated vs actual cost")
    print(f"{'subplan':<55} {'estimated':>9} {'actual':>9}")
    for (transformations, _, _), est, act in zip(rows, norm_estimates, norm_actuals):
        label = " + ".join(transformations) if transformations else "(no structural change)"
        print(f"{label:<55} {est:>9.3f} {act:>9.3f}")

    # The estimates identify the best and the worst subplans (paper §7.5):
    # choosing by estimated cost must not lose more than 10% of the actual
    # optimum (ties between near-identical subplans are acceptable), and the
    # estimated-worst subplan must be the actual-worst.
    chosen_by_estimate = estimates.index(min(estimates))
    assert actuals[chosen_by_estimate] <= min(actuals) * 1.10
    assert estimates.index(max(estimates)) == actuals.index(max(actuals))
    # And they correlate reasonably: mean absolute normalized error is bounded.
    mean_error = sum(abs(e - a) for e, a in zip(norm_estimates, norm_actuals)) / len(rows)
    assert mean_error < 0.35
