"""Figure 10: enumeration of valid transformations within one optimization unit.

Regenerates the Figure 10 view for the running example (the Business Report
workflow): the subplans enumerated inside the optimization unit whose
producers are the two group-by jobs, each with the best estimated cost found
by the RRS configuration search.  The chosen subplan must be the one with the
lowest estimated cost.
"""

from conftest import run_once

from repro.core.optimization_unit import OptimizationUnitGenerator
from repro.core.search import StubbySearch
from repro.core.transformations import (
    HorizontalPacking,
    InterJobVerticalPacking,
    IntraJobVerticalPacking,
    PartitionFunctionTransformation,
)


def test_fig10_subplan_enumeration_within_a_unit(benchmark, harness, cluster):
    workload = harness.prepare_workload("BR")
    plan = workload.plan
    search = StubbySearch(
        cluster=cluster,
        vertical_transformations=[
            IntraJobVerticalPacking(),
            InterJobVerticalPacking(),
            PartitionFunctionTransformation(),
        ],
        horizontal_transformations=[HorizontalPacking(), PartitionFunctionTransformation()],
    )
    generator = OptimizationUnitGenerator()
    first_unit = generator.next_unit(plan)
    optimized, _ = search.optimize_unit(plan, first_unit, search.vertical_transformations)
    generator.mark_handled(optimized, first_unit)
    unit = generator.next_unit(optimized)

    def enumerate_and_cost():
        return search.optimize_unit(optimized, unit, search.vertical_transformations)

    _, report = run_once(benchmark, enumerate_and_cost)

    print(f"\nFigure 10: subplans of optimization unit {unit}")
    best = min(record.estimated_cost for record in report.subplans)
    for index, record in enumerate(report.subplans):
        marker = "*" if index == report.chosen_index else " "
        label = " + ".join(record.transformations) if record.transformations else "(no structural change)"
        print(f"  {marker} p{index + 1}: est. cost {record.estimated_cost:9.1f} s  [{label}]")

    assert len(report.subplans) >= 2
    assert report.chosen is not None
    assert report.chosen.estimated_cost == best
    assert any(record.transformations for record in report.subplans)
