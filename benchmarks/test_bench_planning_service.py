"""Soak benchmark of the planning service (BENCH_planning_service.json).

A short mixed-tenant soak against the :class:`PlanningServer`: four tenants
fire ``SOAK_REQUESTS`` requests over a mixed canned/random workload × variant
grid, first against a **cold** server, then — after a warm
``restart()`` — against the same server's merged caches.  The soak runs on
a serial pool (the reference) and on a stealing process pool.

The JSON payload records throughput, p50/p99 latency, per-tenant cache hit
rates, and the pool's dispatch accounting (steals, idle cost units), so CI
can archive the serving-perf trajectory across PRs.

Contracts:

* **identity, always** — every response of every soak is bit-identical to
  the cold in-process oracle (:func:`cold_optimize`);
* **counters, always** — per-tenant attributed stats sum exactly to the
  global cache deltas, and the warm wave's decision hit rate is strictly
  above the cold wave's;
* **wall-clock, where parallelism exists** — on hosts with more than 4
  usable CPUs the process pool's cold soak must beat the serial pool's by
  ``BENCH_SERVICE_MIN_SPEEDUP`` (default 1.3; requests share one cost
  service, so the win is bounded by the cold solves that can overlap).
  ``BENCH_SERVICE_ENFORCE=always`` / ``never`` overrides the policy.
"""

import asyncio
import json
import os
import time

from conftest import BENCHMARK_SCALE, run_once

from repro.cluster import ClusterSpec
from repro.profiler import Profiler
from repro.service import PlanRequest, PlanningServer, cold_optimize, oracle_fingerprint, percentile
from repro.verification import RandomWorkflowGenerator
from repro.verification.generator import GeneratorConfig
from repro.workloads import build_workload

#: Requests per wave (each soak runs one cold and one warm wave).
SOAK_REQUESTS = int(os.environ.get("BENCH_SERVICE_REQUESTS", "48"))

PARALLEL_POOL = "process:4"

COMBOS = (
    ("rand-a", "Stubby"),
    ("rand-b", "Stubby"),
    ("pj", "Stubby"),
    ("rand-a", "Vertical"),
    ("rand-b", "Horizontal"),
    ("pj", "Baseline"),
)


def _output_path():
    return os.environ.get("BENCH_SERVICE_OUT", "BENCH_planning_service.json")


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _min_speedup() -> float:
    return float(os.environ.get("BENCH_SERVICE_MIN_SPEEDUP", "1.3"))


def _speedup_enforced(cpus: int) -> bool:
    policy = os.environ.get("BENCH_SERVICE_ENFORCE", "auto").strip().lower()
    if policy == "always":
        return True
    if policy == "never":
        return False
    return cpus > 4


def _build_catalog(cluster):
    plans = {}
    for name, seed in (("rand-a", 101), ("rand-b", 202)):
        generated = RandomWorkflowGenerator(
            GeneratorConfig(min_jobs=3, max_jobs=4)
        ).generate(seed)
        plans[name] = generated.plan
    workload = build_workload("PJ", scale=BENCHMARK_SCALE, seed=42)
    Profiler().profile_workflow(workload.workflow, workload.base_datasets)
    plans["pj"] = workload.plan
    return plans


def _request(i: int) -> PlanRequest:
    workload, optimizer = COMBOS[i % len(COMBOS)]
    return PlanRequest(
        tenant=f"t{i % 4}",
        workload=workload,
        optimizer=optimizer,
        cost_weight=3.0 if optimizer == "Stubby" else 1.0,
    )


def _soak(cluster, catalog, pool):
    """One cold wave + warm restart + one warm wave; returns measurements."""

    async def main():
        server = PlanningServer(cluster, pool=pool)
        for name, plan in catalog.items():
            server.register_workload(name, plan)
        cost_before = server.costs.stats_snapshot()
        decision_before = server.decisions.stats_snapshot()
        waves = {}
        async with server:
            for wave in ("cold", "warm"):
                decisions_before = server.stats.total_decision_stats()
                started = time.perf_counter()
                responses = await asyncio.gather(
                    *[server.submit(_request(i)) for i in range(SOAK_REQUESTS)]
                )
                elapsed = time.perf_counter() - started
                waves[wave] = {
                    "responses": responses,
                    "wall_s": elapsed,
                    "decision_delta": server.stats.total_decision_stats().since(
                        decisions_before
                    ),
                }
                if wave == "cold":
                    await server.restart()
            dispatch = server.dispatch_stats()
        cost_delta = server.costs.stats_snapshot().since(cost_before)
        decision_delta = server.decisions.stats_snapshot().since(decision_before)
        return server, waves, dispatch, cost_delta, decision_delta

    return asyncio.run(main())


def _wave_row(wave):
    latencies = [response.latency_s for response in wave["responses"]]
    delta = wave["decision_delta"]
    return {
        "requests": len(latencies),
        "wall_s": round(wave["wall_s"], 4),
        "throughput_rps": round(len(latencies) / max(wave["wall_s"], 1e-9), 2),
        "latency_p50_ms": round(percentile(latencies, 50) * 1e3, 2),
        "latency_p99_ms": round(percentile(latencies, 99) * 1e3, 2),
        "decision_hit_rate": round(delta.hit_rate, 4),
        "decision_lookups": delta.lookups,
    }


def test_bench_planning_service(benchmark, cluster):
    catalog = _build_catalog(cluster)
    oracles = {
        (workload, optimizer): oracle_fingerprint(
            cold_optimize(cluster, catalog[workload], optimizer)
        )
        for workload, optimizer in COMBOS
    }

    def run_all():
        serial = _soak(cluster, catalog, "serial")
        parallel = _soak(cluster, catalog, PARALLEL_POOL)
        return serial, parallel

    serial, parallel = run_once(benchmark, run_all)

    pools = {}
    for pool, (server, waves, dispatch, cost_delta, decision_delta) in (
        ("serial", serial),
        (PARALLEL_POOL, parallel),
    ):
        # Contract 1: identity, every response of every wave.
        for wave in waves.values():
            for response in wave["responses"]:
                assert response.ok, response.error
                key = (response.workload, response.optimizer)
                assert response.identity() == oracles[key], (
                    f"{pool}: {key} diverged from the cold oracle"
                )
        # Contract 2a: exact per-tenant attribution reconciliation.
        assert server.stats.total_cost_stats().as_dict() == cost_delta.as_dict()
        assert server.stats.total_decision_stats().as_dict() == decision_delta.as_dict()
        # Contract 2b: the warm wave strictly beats the cold wave.
        assert waves["warm"]["decision_delta"].hit_rate > waves["cold"][
            "decision_delta"
        ].hit_rate, f"{pool}: warm wave did not beat the cold wave's hit rate"
        pools[pool] = {
            "cold": _wave_row(waves["cold"]),
            "warm": _wave_row(waves["warm"]),
            "dispatch": dispatch.as_dict(),
            "tenants": {
                name: {
                    "completed": row.completed,
                    "cost_hit_rate": round(row.cache_hit_rate, 4),
                    "decision_hit_rate": round(row.decision_hit_rate, 4),
                    "latency_p50_ms": round(percentile(row.latencies, 50) * 1e3, 2),
                    "latency_p99_ms": round(percentile(row.latencies, 99) * 1e3, 2),
                }
                for name, row in server.stats.tenants.items()
            },
        }

    cpus = _usable_cpus()
    speedup_enforced = _speedup_enforced(cpus)
    speedup = serial[1]["cold"]["wall_s"] / max(parallel[1]["cold"]["wall_s"], 1e-9)

    payload = {
        "benchmark": "planning_service",
        "scale": BENCHMARK_SCALE,
        "requests_per_wave": SOAK_REQUESTS,
        "combos": [list(combo) for combo in COMBOS],
        "parallel_pool": PARALLEL_POOL,
        "usable_cpus": cpus,
        "identity_ok": True,
        "cold_soak_speedup": round(speedup, 3),
        "speedup_enforced": speedup_enforced,
        "min_speedup": _min_speedup(),
        "pools": pools,
    }
    with open(_output_path(), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    print(
        f"\nPlanning service soak, {SOAK_REQUESTS} requests/wave x 4 tenants, "
        f"serial vs {PARALLEL_POOL} ({cpus} usable CPU(s))"
    )
    print("pool / wave          wall_s   req/s   p50 ms   p99 ms  decision hit")
    for pool, rows in pools.items():
        for wave in ("cold", "warm"):
            row = rows[wave]
            print(
                f"{pool:<12} {wave:<6} {row['wall_s']:>7.2f} {row['throughput_rps']:>7.1f} "
                f"{row['latency_p50_ms']:>8.1f} {row['latency_p99_ms']:>8.1f} "
                f"{row['decision_hit_rate']:>12.3f}"
            )
        dispatch = rows["dispatch"]
        print(
            f"{pool:<12} dispatch: steals={dispatch['steals']} "
            f"idle_cost_units={dispatch['idle_cost_units']:.1f} "
            f"worker_deaths={dispatch['worker_deaths']}"
        )
    print(f"cold soak speedup (serial / {PARALLEL_POOL}): {speedup:.2f}x")

    if speedup_enforced:
        assert speedup >= _min_speedup(), (
            f"{PARALLEL_POOL} cold soak reached only {speedup:.2f}x over serial "
            f"on {cpus} CPUs (required {_min_speedup():.1f}x); see {_output_path()}"
        )
    assert os.path.exists(_output_path())
