"""Figure 12: Stubby against Starfish, YSmart, and MRShare.

Regenerates the paper's Figure 12 series: speedup over the Baseline for
Stubby and the three state-of-the-art comparators on all eight workloads.
Expected shape: Stubby matches or outperforms every comparator on every
workload (it searches a superset of their plan spaces, cost-based); Starfish
helps everywhere it can tune configurations; MRShare only helps where
horizontal packing applies and correctly declines it for PJ.
"""

from conftest import run_once

from repro.workloads import WORKLOAD_ORDER

OPTIMIZERS = ("Baseline", "Stubby", "Starfish", "YSmart", "MRShare")


def test_fig12_comparison_with_state_of_the_art(benchmark, harness):
    def run_all():
        return [harness.compare(abbr, optimizers=OPTIMIZERS) for abbr in WORKLOAD_ORDER]

    comparisons = run_once(benchmark, run_all)

    print("\nFigure 12: speedup over Baseline (actual simulated runtimes)")
    print(harness.format_speedup_table(comparisons, OPTIMIZERS))

    for comparison in comparisons:
        for run in comparison.runs.values():
            assert run.output_equivalent, f"{comparison.abbreviation}:{run.optimizer} changed results"
        stubby = comparison.speedup("Stubby")
        for other in ("Starfish", "YSmart", "MRShare"):
            assert stubby >= comparison.speedup(other) * 0.9, (
                f"{comparison.abbreviation}: Stubby should not lose to {other}"
            )

    by_abbr = {c.abbreviation: c for c in comparisons}
    # MRShare (cost-based) correctly refuses to pack the PJ consumers, while
    # YSmart (rule-based) packs them.
    assert by_abbr["PJ"].runs["MRShare"].num_jobs == 3
    assert by_abbr["PJ"].runs["YSmart"].num_jobs == 2
    assert by_abbr["PJ"].speedup("MRShare") >= by_abbr["PJ"].speedup("YSmart")
