"""Table 1: the eight MapReduce workflows and their dataset sizes.

Regenerates the rows of the paper's Table 1 — workflow abbreviation, name,
and (logical) dataset size — from the workload builders, together with the
job counts each workflow starts with.
"""

from conftest import run_once

from repro.workloads import WORKLOAD_ORDER, build_workload

PAPER_SIZES_GB = {
    "IR": 264, "SN": 267, "LA": 500, "WG": 255, "BA": 550, "BR": 530, "PJ": 10, "US": 530,
}


def test_table1_workflows_and_dataset_sizes(benchmark):
    def build_all():
        return {abbr: build_workload(abbr, scale=0.1) for abbr in WORKLOAD_ORDER}

    workloads = run_once(benchmark, build_all)

    print("\nTable 1: MapReduce workflows and corresponding data sizes")
    print(f"{'Abbr':<5} {'Workflow':<32} {'Jobs':>4} {'Paper GB':>9} {'Modelled GB':>12}")
    for abbr in WORKLOAD_ORDER:
        workload = workloads[abbr]
        print(
            f"{abbr:<5} {workload.name:<32} {workload.num_jobs:>4} "
            f"{workload.paper_dataset_gb:>9.0f} {workload.logical_dataset_gb:>12.1f}"
        )

    for abbr, workload in workloads.items():
        assert workload.paper_dataset_gb == PAPER_SIZES_GB[abbr]
        assert abs(workload.logical_dataset_gb - PAPER_SIZES_GB[abbr]) / PAPER_SIZES_GB[abbr] < 0.02
        workload.workflow.validate()
