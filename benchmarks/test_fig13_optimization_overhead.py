"""Figure 13: Stubby's optimization overhead.

Regenerates the paper's Figure 13: the wall-clock time Stubby spends
optimizing each workflow, and that time as a percentage of the workflow's
(Baseline) runtime.  The expected shape: optimization takes seconds — a small
fraction of workflows whose simulated runtimes are in the hundreds-to-
thousands of seconds range — so the overhead is easily amortized over
repeated runs of periodic analytical workflows.
"""

from conftest import run_once

from repro.workloads import WORKLOAD_ORDER


def test_fig13_optimization_overhead(benchmark, harness):
    def run_all():
        return [
            harness.compare(abbr, optimizers=("Baseline", "Stubby")) for abbr in WORKLOAD_ORDER
        ]

    comparisons = run_once(benchmark, run_all)

    print("\nFigure 13: Stubby optimization overhead")
    print(harness.format_overhead_table(comparisons))

    for comparison in comparisons:
        stubby = comparison.runs["Stubby"]
        baseline = comparison.runs["Baseline"]
        assert stubby.optimization_time_s > 0.0
        # Optimization takes far less wall-clock time than the (simulated)
        # cluster would spend running even the optimized workflow once.
        assert stubby.optimization_time_s < baseline.actual_s
        assert stubby.optimization_time_s < 120.0
