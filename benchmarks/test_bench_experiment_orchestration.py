"""Wall-clock benchmark of the experiment orchestration (BENCH_experiment_orchestration.json).

Runs one multi-workload, multi-optimizer experiment three ways:

1. **cold serial** — the reference: every (workload × optimizer) cell in a
   loop, cold persisted cache (this run *writes* the cache);
2. **cold parallel** — the same experiment fanned out on the fork-based
   process backend at 4 workers, starting from an equally cold cache;
3. **warm serial** — the same experiment again, warm-started from the cache
   run 1 persisted.

The result is written to ``BENCH_experiment_orchestration.json`` (path
overridable through ``BENCH_EXPERIMENT_ORCH_OUT``) so CI can archive the
perf trajectory across PRs.

Three contracts are enforced:

* **identity, always** — all three runs must report byte-for-byte the same
  results (same optimized plans, same simulated runtimes, same speedups) at
  any core count, warm or cold.
* **warm-start, always** — the warm run must show a strictly higher
  cost-service hit rate than the cold run, and cross-origin hits (reuse of
  the previous run's persisted entries) must be present.
* **speedup, where parallelism exists** — on hosts with *more than* 4
  usable CPUs the parallel cell phase must be at least
  ``BENCH_EXPERIMENT_MIN_SPEEDUP`` (default 1.5, below the unit-search gate
  because cells are coarse and heterogeneous, so the longest cell bounds
  the win) times faster than the serial cell phase.  On smaller hosts the
  speedup is recorded honestly but not asserted —
  ``BENCH_EXPERIMENT_ENFORCE=always`` / ``never`` overrides the policy.
"""

import json
import os

from conftest import BENCHMARK_SCALE, run_once

from repro.experiments import ExperimentHarness

#: The experiment grid: enough workloads to exercise scheduling, enough
#: optimizer variants per workload to exercise cross-cell signature sharing.
WORKLOADS = ("PJ", "BR", "IR")
OPTIMIZERS = ("Baseline", "Stubby", "Vertical", "Horizontal")

PARALLEL_BACKEND = "process:4"


def _output_path():
    return os.environ.get("BENCH_EXPERIMENT_ORCH_OUT", "BENCH_experiment_orchestration.json")


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _min_speedup() -> float:
    return float(os.environ.get("BENCH_EXPERIMENT_MIN_SPEEDUP", "1.5"))


def _speedup_enforced(cpus: int) -> bool:
    policy = os.environ.get("BENCH_EXPERIMENT_ENFORCE", "auto").strip().lower()
    if policy == "always":
        return True
    if policy == "never":
        return False
    # auto: the 4 workers need a spare core for the parent (and slack for
    # noisy neighbours on shared runners) before wall-clock is a fair gate.
    return cpus > 4


def _run_row(result):
    """The per-run numbers recorded in the JSON payload."""
    stats = result.cost_stats
    return {
        "backend": result.backend,
        "prepare_s": round(result.prepare_s, 4),
        "cells_s": round(result.cells_s, 4),
        "wall_s": round(result.wall_s, 4),
        "queries": stats.queries,
        "job_queries": stats.job_queries,
        "cache_hit_rate": round(stats.cache_hit_rate, 4),
        "reuse_rate": round(stats.reuse_rate, 4),
        "cross_unit_hits": result.cross_unit_hits,
        "warm_start_entries": result.warm_start_entries,
        "cache_entries_at_start": result.cache_entries_at_start,
    }


def test_bench_experiment_orchestration(benchmark, cluster, tmp_path):
    cache_path = str(tmp_path / "experiment.cache")

    def run_experiment(backend, with_cache):
        harness = ExperimentHarness(
            cluster=cluster,
            scale=BENCHMARK_SCALE,
            cache_path=cache_path if with_cache else "",
        )
        return harness.run(workloads=WORKLOADS, optimizers=OPTIMIZERS, backend=backend)

    def run_all():
        cold = run_experiment("serial", with_cache=True)  # persists the cache
        parallel = run_experiment(PARALLEL_BACKEND, with_cache=False)
        warm = run_experiment("serial", with_cache=True)
        return cold, parallel, warm

    cold, parallel, warm = run_once(benchmark, run_all)

    # Contract 1: identity — every backend, warm or cold, same results.
    assert parallel.decision_fingerprint() == cold.decision_fingerprint(), (
        f"{PARALLEL_BACKEND} made different decisions than serial"
    )
    assert warm.decision_fingerprint() == cold.decision_fingerprint(), (
        "warm-started run made different decisions than the cold run"
    )

    # Contract 2: warm-start — strictly better hit rate, visible reuse.
    assert warm.warm_start_entries > 0
    assert warm.cost_stats.cache_hit_rate > cold.cost_stats.cache_hit_rate, (
        f"warm hit rate {warm.cost_stats.cache_hit_rate:.4f} not above cold "
        f"{cold.cost_stats.cache_hit_rate:.4f}"
    )
    assert warm.cross_unit_hits > 0

    cpus = _usable_cpus()
    speedup_enforced = _speedup_enforced(cpus)
    speedup = cold.cells_s / max(parallel.cells_s, 1e-9)

    payload = {
        "benchmark": "experiment_orchestration",
        "scale": BENCHMARK_SCALE,
        "workloads": list(WORKLOADS),
        "optimizers": list(OPTIMIZERS),
        "parallel_backend": PARALLEL_BACKEND,
        "usable_cpus": cpus,
        "identity_ok": True,
        "cells_speedup": round(speedup, 3),
        "speedup_enforced": speedup_enforced,
        "min_speedup": _min_speedup(),
        "cold_serial": _run_row(cold),
        "cold_parallel": _run_row(parallel),
        "warm_serial": _run_row(warm),
    }
    with open(_output_path(), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    print(
        f"\nExperiment orchestration, {len(WORKLOADS)}x{len(OPTIMIZERS)} cells, "
        f"serial vs {PARALLEL_BACKEND} ({cpus} usable CPU(s))"
    )
    print("run           cells_s  hit_rate  cross_hits  warm_entries")
    for label, row in (
        ("cold serial", _run_row(cold)),
        ("cold parallel", _run_row(parallel)),
        ("warm serial", _run_row(warm)),
    ):
        print(
            f"{label:<13} {row['cells_s']:>7.2f} {row['cache_hit_rate']:>9.3f} "
            f"{row['cross_unit_hits']:>11d} {row['warm_start_entries']:>13d}"
        )
    print(f"cells speedup (cold serial / cold parallel): {speedup:.2f}x")

    if speedup_enforced:
        assert speedup >= _min_speedup(), (
            f"{PARALLEL_BACKEND} reached only {speedup:.2f}x over serial on "
            f"{cpus} CPUs (required {_min_speedup():.1f}x); see {_output_path()}"
        )
    assert os.path.exists(_output_path())
