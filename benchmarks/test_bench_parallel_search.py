"""Wall-clock benchmark of the parallel unit search (BENCH_parallel_search.json).

Runs the full Stubby optimizer over every canned workload twice — once on the
serial backend, once on the fork-based process backend at 4 workers — with an
enlarged RRS budget (the scale-out regime the parallel search exists for),
and records per-workload wall times, the speedup, and the cost-service
counters of both runs.  The result is written to
``BENCH_parallel_search.json`` (path overridable through the
``BENCH_PARALLEL_SEARCH_OUT`` environment variable) so CI can archive the
perf trajectory across PRs.

Two contracts are enforced:

* **identity, always** — the process backend must make byte-for-byte the
  same decisions as serial: same chosen subplans, same settings, same
  estimated costs.  This holds on any machine, at any core count.
* **speedup, where parallelism exists** — on hosts with *more than* 4
  usable CPUs (the 4 workers plus at least one spare core for the parent)
  the process backend must be at least ``BENCH_PARALLEL_MIN_SPEEDUP``
  (default 1.8) times faster over the whole suite.  On smaller hosts —
  a 1-CPU container where parallel speedup is physically impossible, or a
  shared 4-vCPU CI runner where noisy neighbours would make a hard
  wall-clock gate flaky — the speedup is recorded honestly in the JSON but
  not asserted.  ``BENCH_PARALLEL_ENFORCE=always`` / ``never`` overrides
  the automatic policy.
"""

import json
import os
import time

from conftest import BENCHMARK_SCALE, run_once

from repro.cluster import ClusterSpec
from repro.core.optimizer import StubbyOptimizer
from repro.core.rrs import RecursiveRandomSearch
from repro.profiler import Profiler
from repro.workloads import WORKLOAD_ORDER, build_workload

#: The parallel benchmark runs RRS with a larger sampling budget than the
#: optimizer default: more samples per generation is precisely the regime
#: the batched, fanned-out costing is built for (ROADMAP: "bigger RRS
#: budgets"), and it keeps per-task work comfortably above the fork/IPC
#: overhead of the process backend.
RRS_BUDGET = dict(exploration_samples=24, exploitation_samples=16, restarts=2, seed=17)

PARALLEL_BACKEND = "process:4"


def _output_path():
    return os.environ.get("BENCH_PARALLEL_SEARCH_OUT", "BENCH_parallel_search.json")


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _min_speedup() -> float:
    return float(os.environ.get("BENCH_PARALLEL_MIN_SPEEDUP", "1.8"))


def _speedup_enforced(cpus: int) -> bool:
    policy = os.environ.get("BENCH_PARALLEL_ENFORCE", "auto").strip().lower()
    if policy == "always":
        return True
    if policy == "never":
        return False
    # auto: the 4 workers need a spare core for the parent (and slack for
    # noisy neighbours on shared runners) before wall-clock is a fair gate.
    return cpus > 4


def _fingerprint(result):
    """The optimizer's decisions as comparable plain data."""
    units = []
    for report in result.unit_reports:
        chosen = report.chosen
        units.append(
            (
                report.unit.producers,
                report.chosen_index,
                tuple(record.estimated_cost for record in report.subplans),
                tuple(
                    sorted(
                        (job, tuple(sorted(settings.items())))
                        for job, settings in (chosen.best_settings if chosen else {}).items()
                    )
                ),
            )
        )
    return (result.plan.signature(), result.estimated_cost_s, tuple(units))


def test_bench_parallel_search(benchmark, cluster):
    workloads = {}
    for abbr in WORKLOAD_ORDER:
        workload = build_workload(abbr, scale=BENCHMARK_SCALE)
        Profiler().profile_workflow(workload.workflow, workload.base_datasets)
        workloads[abbr] = workload

    def run_one(abbr, backend):
        rrs = RecursiveRandomSearch(**RRS_BUDGET)
        optimizer = StubbyOptimizer(cluster, seed=17, rrs=rrs, backend=backend)
        started = time.perf_counter()
        result = optimizer.optimize(workloads[abbr].plan)
        wall_s = time.perf_counter() - started
        return result, wall_s

    def run_all():
        rows = {}
        for abbr in WORKLOAD_ORDER:
            serial_result, serial_s = run_one(abbr, "serial")
            parallel_result, parallel_s = run_one(abbr, PARALLEL_BACKEND)
            assert _fingerprint(parallel_result) == _fingerprint(serial_result), (
                f"{abbr}: {PARALLEL_BACKEND} made different decisions than serial"
            )
            rows[abbr] = {
                "serial_wall_s": round(serial_s, 4),
                "parallel_wall_s": round(parallel_s, 4),
                "speedup": round(serial_s / max(parallel_s, 1e-9), 3),
                "num_jobs": serial_result.num_jobs,
                "estimated_cost_s": serial_result.estimated_cost_s,
                "whatif_queries": serial_result.cost_stats.queries,
                "parallel_whatif_queries": parallel_result.cost_stats.queries,
            }
        return rows

    rows = run_once(benchmark, run_all)

    serial_total = sum(row["serial_wall_s"] for row in rows.values())
    parallel_total = sum(row["parallel_wall_s"] for row in rows.values())
    total_speedup = serial_total / max(parallel_total, 1e-9)
    cpus = _usable_cpus()
    speedup_enforced = _speedup_enforced(cpus)

    payload = {
        "benchmark": "parallel_unit_search",
        "scale": BENCHMARK_SCALE,
        "backend": PARALLEL_BACKEND,
        "rrs_budget": RRS_BUDGET,
        "usable_cpus": cpus,
        "serial_total_s": round(serial_total, 4),
        "parallel_total_s": round(parallel_total, 4),
        "total_speedup": round(total_speedup, 3),
        "speedup_enforced": speedup_enforced,
        "min_speedup": _min_speedup(),
        "workloads": rows,
    }
    with open(_output_path(), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    print(f"\nParallel unit search, serial vs {PARALLEL_BACKEND} ({cpus} usable CPU(s))")
    print("workload  serial_s  parallel_s  speedup  whatif_q")
    for abbr, row in rows.items():
        print(
            f"{abbr:<9} {row['serial_wall_s']:>8.2f} {row['parallel_wall_s']:>11.2f} "
            f"{row['speedup']:>8.2f} {row['whatif_queries']:>9d}"
        )
    print(f"total     {serial_total:>8.2f} {parallel_total:>11.2f} {total_speedup:>8.2f}")

    assert len(rows) == len(WORKLOAD_ORDER)
    for abbr, row in rows.items():
        assert row["whatif_queries"] > 0, abbr
    if speedup_enforced:
        assert total_speedup >= _min_speedup(), (
            f"process backend reached only {total_speedup:.2f}x over serial on "
            f"{cpus} CPUs (required {_min_speedup():.1f}x); see {_output_path()}"
        )
    assert os.path.exists(_output_path())
