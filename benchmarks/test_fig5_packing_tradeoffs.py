"""Figure 5: performance improvement and degradation caused by packing.

Regenerates the four bars of Figure 5: the speedup of intra-job vertical
packing and of horizontal packing over the unpacked plan, on a favourable
and on an unfavourable input.  The expected shape: each transformation has
one case above 1x (improvement) and one case at or below 1x, which is the
motivation for costing packing decisions instead of always applying them.
"""

from conftest import run_once

from repro.experiments import horizontal_packing_tradeoff, vertical_packing_tradeoff


def test_fig5_vertical_packing_tradeoff(benchmark, cluster):
    tradeoff = run_once(benchmark, lambda: vertical_packing_tradeoff(cluster))
    print("\nFigure 5 (left): intra-job vertical packing, speedup over no packing")
    print(f"  performance improvement : {tradeoff.favourable_speedup:5.2f}x")
    print(f"  performance degradation : {tradeoff.unfavourable_speedup:5.2f}x")
    assert tradeoff.favourable_speedup > 1.0
    assert tradeoff.unfavourable_speedup < 1.0


def test_fig5_horizontal_packing_tradeoff(benchmark, cluster):
    tradeoff = run_once(benchmark, lambda: horizontal_packing_tradeoff(cluster))
    print("\nFigure 5 (right): horizontal packing, speedup over no packing")
    print(f"  performance improvement : {tradeoff.favourable_speedup:5.2f}x")
    print(f"  performance degradation : {tradeoff.unfavourable_speedup:5.2f}x")
    assert tradeoff.favourable_speedup > 1.0
    assert tradeoff.unfavourable_speedup < tradeoff.favourable_speedup
